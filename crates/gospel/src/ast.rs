//! Abstract syntax of GOSpeL specifications.

pub use gospel_dep::{DepKind, DirElem};

/// A complete optimization specification.
#[derive(Clone, Debug, PartialEq)]
pub struct Spec {
    /// The optimization's name (e.g. `CTP`).
    pub name: String,
    /// Application mode requested by the author.
    pub mode: Mode,
    /// `TYPE` section.
    pub decls: Vec<TypeDecl>,
    /// `PRECOND` / `Code_Pattern` clauses, in source order.
    pub patterns: Vec<PatternClause>,
    /// `PRECOND` / `Depend` clauses, in source order (the paper requires
    /// patterns before dependences, which the grammar enforces).
    pub depends: Vec<DependClause>,
    /// `ACTION` section.
    pub actions: Vec<Action>,
}

/// How the generated optimizer should be applied (Section 1: traditional
/// optimizations run automatically; parallelizing transformations at the
/// user's direction).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Mode {
    /// Apply wherever the precondition holds.
    #[default]
    Auto,
    /// Apply only at user-selected points.
    Interactive,
}

/// The element types of the declaration section.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ElemType {
    /// A single statement.
    Stmt,
    /// A single loop.
    Loop,
    /// A pair of loops, one (anywhere) inside the other.
    NestedLoops,
    /// A pair of loops nested with no statements between them.
    TightLoops,
    /// A pair of loops where the second immediately follows the first.
    AdjacentLoops,
}

impl ElemType {
    /// Number of identifiers a declaration group of this type binds.
    pub fn arity(self) -> usize {
        match self {
            ElemType::Stmt | ElemType::Loop => 1,
            _ => 2,
        }
    }

    /// The GOSpeL keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            ElemType::Stmt => "Stmt",
            ElemType::Loop => "Loop",
            ElemType::NestedLoops => "Nested_Loops",
            ElemType::TightLoops => "Tight_Loops",
            ElemType::AdjacentLoops => "Adjacent_Loops",
        }
    }
}

/// One `TYPE` declaration: `Stmt: Si, Sj;` or `Tight_Loops: (L1, L2);`.
#[derive(Clone, Debug, PartialEq)]
pub struct TypeDecl {
    /// The declared element type.
    pub ty: ElemType,
    /// Identifier groups — singletons for `Stmt`/`Loop`, pairs otherwise.
    pub groups: Vec<Vec<String>>,
}

/// The three quantifiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quant {
    /// Bind one element satisfying the clause (search).
    Any,
    /// Bind the set of all elements satisfying the clause.
    All,
    /// Require that no element satisfies the clause (check only).
    No,
}

impl Quant {
    /// The GOSpeL keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            Quant::Any => "any",
            Quant::All => "all",
            Quant::No => "no",
        }
    }
}

/// A `Code_Pattern` clause: `quant vars [: format];`.
#[derive(Clone, Debug, PartialEq)]
pub struct PatternClause {
    /// The quantifier.
    pub quant: Quant,
    /// Bound element variables (one, or a pair for loop-pair types).
    pub vars: Vec<String>,
    /// Format restriction, if any.
    pub format: Option<BoolExpr>,
}

/// A `Depend` clause:
/// `quant vars [: member constraints ,] dependence conditions ;`.
///
/// The paper's `(Sj, pos)` form binds the operand position of the
/// dependence's sink access alongside the statement; `pos_vars[i]`
/// corresponds to `vars[i]` where present.
#[derive(Clone, Debug, PartialEq)]
pub struct DependClause {
    /// The quantifier.
    pub quant: Quant,
    /// Newly bound element variables (may be empty for pure checks).
    pub vars: Vec<String>,
    /// Position variables bound together with each element (parallel to
    /// `vars`; `None` where no position was requested).
    pub pos_vars: Vec<Option<String>>,
    /// Membership constraints (`mem(S, L)` …), evaluated before the
    /// dependence conditions as the paper's grammar requires.
    pub members: Vec<MemExpr>,
    /// The dependence conditions.
    pub cond: BoolExpr,
}

/// `mem(Element, Set)`.
#[derive(Clone, Debug, PartialEq)]
pub struct MemExpr {
    /// The element (usually a statement variable).
    pub elem: ValExpr,
    /// The set it must belong to.
    pub set: SetExpr,
    /// Negated membership (`nmem`).
    pub negated: bool,
}

/// Set expressions for membership constraints.
#[derive(Clone, Debug, PartialEq)]
pub enum SetExpr {
    /// A loop variable's body, or a set bound by an `all` clause.
    Named(String),
    /// `path(a, b)`: statements on the program-order path between two
    /// statements.
    Path(ValExpr, ValExpr),
    /// Set union.
    Union(Box<SetExpr>, Box<SetExpr>),
    /// Set intersection.
    Inter(Box<SetExpr>, Box<SetExpr>),
}

/// Boolean precondition expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum BoolExpr {
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
    /// Comparison of two values.
    Cmp(ValExpr, CmpOp, ValExpr),
    /// A dependence test `flow_dep(a, b, (dir…))`.
    Dep {
        /// Which dependence.
        kind: DepKind,
        /// Source element.
        from: ValExpr,
        /// Sink element. May be a `(var, posvar)` binding introduced by the
        /// enclosing clause.
        to: ValExpr,
        /// Direction-vector pattern; `None` when omitted.
        dirs: Option<Vec<DirElem>>,
    },
    /// `type(x) == const` and friends.
    TypeIs(ValExpr, OperandClass, bool),
}

/// Operand classifications testable with `type(...)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OperandClass {
    /// A compile-time constant.
    Const,
    /// A scalar variable.
    Var,
    /// An array element reference.
    Elem,
    /// No operand in that slot.
    None,
}

impl OperandClass {
    /// The GOSpeL keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            OperandClass::Const => "const",
            OperandClass::Var => "var",
            OperandClass::Elem => "elem",
            OperandClass::None => "none",
        }
    }
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Value expressions: element references, operand accessors, literals.
#[derive(Clone, Debug, PartialEq)]
pub enum ValExpr {
    /// `Si`, `L1.head.nxt`, `Sj.opr_2`, `L2.lcv` — a variable with an
    /// attribute path.
    Ref(ElemRef),
    /// `operand(S, pos)` — the operand of a statement at a position bound
    /// by a dependence clause (or a literal position 1–3).
    OperandFn(Box<ValExpr>, Box<ValExpr>),
    /// A bare identifier that is not a declared element: an opcode name in
    /// `Si.opc == assign`, or a position variable.
    Name(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// `eval(a, op, b)` — constant-fold two operands (extension used by the
    /// CFO specification; see DESIGN.md). The operation is either a literal
    /// opcode name (`add`) or an opcode-valued reference (`Si.opc`).
    Eval(Box<ValExpr>, Box<ValExpr>, Box<ValExpr>),
    /// `bump(x, var, k)` — substitute `var := var + k` inside operand `x`
    /// (extension used by the LUR and BMP specifications; see DESIGN.md).
    /// The amount is any constant-valued expression.
    Bump(Box<ValExpr>, Box<ValExpr>, Box<ValExpr>),
}

/// A variable plus attribute path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElemRef {
    /// The base variable.
    pub base: String,
    /// Attribute accesses, left to right.
    pub path: Vec<Attr>,
}

impl ElemRef {
    /// A bare variable reference.
    pub fn bare(base: impl Into<String>) -> ElemRef {
        ElemRef {
            base: base.into(),
            path: Vec::new(),
        }
    }
}

/// The pre-defined attributes of the paper's element types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Attr {
    /// Next code element of the same type (`.NXT`).
    Nxt,
    /// Previous code element (`.PREV`).
    Prev,
    /// Loop header statement (`.HEAD`).
    Head,
    /// Loop end statement (`.END`).
    End,
    /// Loop body — usable as a set (`.BODY`).
    Body,
    /// Loop control variable (`.LCV`).
    Lcv,
    /// Loop initial value (`.INIT`).
    Init,
    /// Loop final value (`.FINAL`).
    Final,
    /// Statement operand 1–3 (`.opr_1` …).
    Opr(u8),
    /// Statement opcode (`.opc`).
    Opc,
}

impl Attr {
    /// Source spelling.
    pub fn keyword(self) -> String {
        match self {
            Attr::Nxt => "nxt".into(),
            Attr::Prev => "prev".into(),
            Attr::Head => "head".into(),
            Attr::End => "end".into(),
            Attr::Body => "body".into(),
            Attr::Lcv => "lcv".into(),
            Attr::Init => "init".into(),
            Attr::Final => "final".into(),
            Attr::Opr(i) => format!("opr_{i}"),
            Attr::Opc => "opc".into(),
        }
    }
}

/// Statement templates for the `add` primitive.
#[derive(Clone, Debug, PartialEq)]
pub struct ElemDesc {
    /// Opcode name for the new statement.
    pub opc: String,
    /// Destination operand.
    pub opr_1: Option<ValExpr>,
    /// Second operand.
    pub opr_2: Option<ValExpr>,
    /// Third operand.
    pub opr_3: Option<ValExpr>,
}

/// The five transformation primitives plus `forall`.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// `delete(a)` — remove element `a`.
    Delete(ValExpr),
    /// `copy(a, b, c)` — copy `a`, place it after `b`, name it `c`.
    Copy(ValExpr, ValExpr, String),
    /// `move(a, b)` — move `a` to follow `b`.
    Move(ValExpr, ValExpr),
    /// `add(a, desc, b)` — insert a new statement described by `desc`
    /// after `a`, naming it `b`.
    Add(ValExpr, ElemDesc, String),
    /// `modify(place, new)` — overwrite the operand at `place`.
    Modify(ValExpr, ValExpr),
    /// `forall binder in set do … end` — repeat actions for every member
    /// of a set collected by an `all` clause.
    ForAll {
        /// The element variable bound on each iteration.
        var: String,
        /// Optional position variable (for sets of `(stmt, pos)` pairs).
        pos_var: Option<String>,
        /// The set: the name bound by an `all` quantifier, or a loop body.
        set: SetExpr,
        /// Actions executed per member.
        body: Vec<Action>,
    },
}
