//! Tokenizer for GOSpeL specifications.

use std::fmt;

/// Token kinds. Keywords are delivered as [`TokenKind::Ident`] and
/// recognized case-insensitively by the parser.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=` (direction-vector element)
    Assign,
    /// `*` (direction-vector wildcard)
    Star,
    /// `-` (negative literals)
    Minus,
    /// End of input.
    Eof,
}

/// A token with its 1-based source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The kind.
    pub kind: TokenKind,
    /// Source line.
    pub line: u32,
}

/// Lexical error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Offending character.
    pub ch: char,
    /// Source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unexpected character `{}` on line {}", self.ch, self.line)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes GOSpeL source. `/* … */` block comments and `--`/`//` line
/// comments are skipped; whitespace (including newlines) only separates
/// tokens.
///
/// # Errors
///
/// Returns [`LexError`] on characters outside the language.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&'*') => {
                i += 2;
                while i < bytes.len() && !(bytes[i] == '*' && bytes.get(i + 1) == Some(&'/')) {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '-' if bytes.get(i + 1) == Some(&'-') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            _ if c.is_ascii_alphabetic() || c == '_' || c == '@' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '@')
                {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(bytes[start..i].iter().collect()),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let mut is_real = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || (bytes[i] == '.'
                            && !is_real
                            && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())))
                {
                    if bytes[i] == '.' {
                        is_real = true;
                    }
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let kind = if is_real {
                    TokenKind::Real(text.parse().map_err(|_| LexError { ch: '.', line })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| LexError { ch: '9', line })?)
                };
                out.push(Token { kind, line });
            }
            _ => {
                let (kind, adv) = match (c, bytes.get(i + 1)) {
                    ('=', Some('=')) => (TokenKind::EqEq, 2),
                    ('!', Some('=')) => (TokenKind::Ne, 2),
                    ('<', Some('=')) => (TokenKind::Le, 2),
                    ('>', Some('=')) => (TokenKind::Ge, 2),
                    ('=', _) => (TokenKind::Assign, 1),
                    ('<', _) => (TokenKind::Lt, 1),
                    ('>', _) => (TokenKind::Gt, 1),
                    ('(', _) => (TokenKind::LParen, 1),
                    (')', _) => (TokenKind::RParen, 1),
                    ('[', _) => (TokenKind::LBracket, 1),
                    (']', _) => (TokenKind::RBracket, 1),
                    (',', _) => (TokenKind::Comma, 1),
                    (';', _) => (TokenKind::Semi, 1),
                    (':', _) => (TokenKind::Colon, 1),
                    ('.', _) => (TokenKind::Dot, 1),
                    ('*', _) => (TokenKind::Star, 1),
                    ('-', _) => (TokenKind::Minus, 1),
                    (other, _) => return Err(LexError { ch: other, line }),
                };
                out.push(Token { kind, line });
                i += adv;
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        lex(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn symbols_and_idents() {
        let k = kinds("any (Sj, pos): flow_dep(Si, Sj, (=));");
        assert!(k.contains(&TokenKind::Ident("flow_dep".into())));
        assert!(k.contains(&TokenKind::Assign));
        assert!(k.contains(&TokenKind::Semi));
        assert!(k.contains(&TokenKind::Colon));
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("== != < <= > >="),
            vec![
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("a /* block\ncomment */ b -- line\nc // another\nd");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Ident("d".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn direction_vector_tokens() {
        assert_eq!(
            kinds("(<,>,=,*)"),
            vec![
                TokenKind::LParen,
                TokenKind::Lt,
                TokenKind::Comma,
                TokenKind::Gt,
                TokenKind::Comma,
                TokenKind::Assign,
                TokenKind::Comma,
                TokenKind::Star,
                TokenKind::RParen,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_tracking() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("2.5")[0], TokenKind::Real(2.5));
    }
}
