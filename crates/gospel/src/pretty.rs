//! Pretty-printer: renders a [`Spec`] back to concrete syntax.

use crate::ast::*;
use std::fmt::Write;

/// Renders a specification in canonical concrete syntax. The result
/// re-parses to an equal AST (round-trip property, tested below).
pub fn pretty(spec: &Spec) -> String {
    let mut s = String::new();
    let _ = write!(s, "OPTIMIZATION {}", spec.name);
    if spec.mode == Mode::Interactive {
        let _ = write!(s, " MODE interactive");
    }
    let _ = writeln!(s);
    let _ = writeln!(s, "TYPE");
    for d in &spec.decls {
        let groups: Vec<String> = d
            .groups
            .iter()
            .map(|g| {
                if g.len() == 1 {
                    g[0].clone()
                } else {
                    format!("({})", g.join(", "))
                }
            })
            .collect();
        let _ = writeln!(s, "  {}: {};", d.ty.keyword(), groups.join(", "));
    }
    let _ = writeln!(s, "PRECOND");
    let _ = writeln!(s, "  Code_Pattern");
    for p in &spec.patterns {
        let _ = writeln!(s, "    {};", pretty_pattern_clause(p));
    }
    if !spec.depends.is_empty() {
        let _ = writeln!(s, "  Depend");
        for d in &spec.depends {
            let _ = writeln!(s, "    {};", pretty_depend_clause(d));
        }
    }
    let _ = writeln!(s, "ACTION");
    for a in &spec.actions {
        action_str(a, 1, &mut s);
    }
    let _ = writeln!(s, "END");
    s
}

/// Renders a boolean expression (format or dependence condition) in
/// concrete syntax — the clause-level entry point the explain engine
/// uses to name a failing conjunct.
pub fn pretty_bool(b: &BoolExpr) -> String {
    bool_str(b)
}

/// Renders one `Code_Pattern` clause (without the trailing `;`), e.g.
/// `any Si: Si.opc == assign AND type(Si.opr_2) == const`.
pub fn pretty_pattern_clause(p: &PatternClause) -> String {
    let vars = if p.vars.len() == 1 {
        p.vars[0].clone()
    } else {
        format!("({})", p.vars.join(", "))
    };
    match &p.format {
        Some(f) => format!("{} {}: {}", p.quant.keyword(), vars, bool_str(f)),
        None => format!("{} {}", p.quant.keyword(), vars),
    }
}

/// Renders one `Depend` clause (without the trailing `;`), e.g.
/// `any (Sj, pos): flow_dep(Si, Sj, (=))`.
pub fn pretty_depend_clause(d: &DependClause) -> String {
    let mut binds = Vec::new();
    for (v, pv) in d.vars.iter().zip(&d.pos_vars) {
        match pv {
            Some(p) => binds.push(format!("({v}, {p})")),
            None => binds.push(v.clone()),
        }
    }
    let mut line = format!("{} {}: ", d.quant.keyword(), binds.join(", "));
    if !d.members.is_empty() {
        let mems: Vec<String> = d.members.iter().map(mem_str).collect();
        let _ = write!(line, "{}, ", mems.join(" AND "));
    }
    let _ = write!(line, "{}", bool_str(&d.cond));
    line
}

fn mem_str(m: &MemExpr) -> String {
    format!(
        "{}({}, {})",
        if m.negated { "nmem" } else { "mem" },
        val_str(&m.elem),
        set_str(&m.set)
    )
}

fn set_str(se: &SetExpr) -> String {
    match se {
        SetExpr::Named(n) => n.clone(),
        SetExpr::Path(a, b) => format!("path({}, {})", val_str(a), val_str(b)),
        SetExpr::Union(a, b) => format!("{} UNION {}", set_str(a), set_str(b)),
        SetExpr::Inter(a, b) => format!("{} INTER {}", set_str(a), set_str(b)),
    }
}

fn bool_str(b: &BoolExpr) -> String {
    match b {
        BoolExpr::And(l, r) => format!("{} AND {}", bool_factor_str(l), bool_factor_str(r)),
        BoolExpr::Or(l, r) => format!("{} OR {}", bool_factor_str(l), bool_factor_str(r)),
        BoolExpr::Not(i) => format!("NOT ({})", bool_str(i)),
        BoolExpr::Cmp(l, op, r) => format!("{} {} {}", val_str(l), op.symbol(), val_str(r)),
        BoolExpr::Dep {
            kind,
            from,
            to,
            dirs,
        } => {
            let mut s = format!("{}({}, {}", kind.gospel_name(), val_str(from), val_str(to));
            if let Some(ds) = dirs {
                let parts: Vec<String> = ds.iter().map(|d| d.symbol().to_string()).collect();
                let _ = write!(s, ", ({})", parts.join(","));
            }
            s.push(')');
            s
        }
        BoolExpr::TypeIs(v, cls, positive) => format!(
            "type({}) {} {}",
            val_str(v),
            if *positive { "==" } else { "!=" },
            cls.keyword()
        ),
    }
}

fn bool_factor_str(b: &BoolExpr) -> String {
    match b {
        BoolExpr::And(_, _) | BoolExpr::Or(_, _) => format!("({})", bool_str(b)),
        _ => bool_str(b),
    }
}

fn val_str(v: &ValExpr) -> String {
    match v {
        ValExpr::Ref(r) => {
            let mut s = r.base.clone();
            for a in &r.path {
                s.push('.');
                s.push_str(&a.keyword());
            }
            s
        }
        ValExpr::OperandFn(st, p) => format!("operand({}, {})", val_str(st), val_str(p)),
        ValExpr::Name(n) => n.clone(),
        ValExpr::Int(n) => n.to_string(),
        ValExpr::Real(r) => format!("{r:?}"),
        ValExpr::Eval(a, op, b) => format!(
            "eval({}, {}, {})",
            val_str(a),
            val_str(op),
            val_str(b)
        ),
        ValExpr::Bump(x, var, k) => format!(
            "bump({}, {}, {})",
            val_str(x),
            val_str(var),
            val_str(k)
        ),
    }
}

fn action_str(a: &Action, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match a {
        Action::Delete(x) => {
            let _ = writeln!(out, "{pad}delete({});", val_str(x));
        }
        Action::Copy(x, after, name) => {
            let _ = writeln!(out, "{pad}copy({}, {}, {name});", val_str(x), val_str(after));
        }
        Action::Move(x, after) => {
            let _ = writeln!(out, "{pad}move({}, {});", val_str(x), val_str(after));
        }
        Action::Add(after, desc, name) => {
            let mut parts = vec![desc.opc.clone()];
            for o in [&desc.opr_1, &desc.opr_2, &desc.opr_3].into_iter().flatten() {
                parts.push(val_str(o));
            }
            let _ = writeln!(
                out,
                "{pad}add({}, [{}], {name});",
                val_str(after),
                parts.join(", ")
            );
        }
        Action::Modify(place, new) => {
            let _ = writeln!(out, "{pad}modify({}, {});", val_str(place), val_str(new));
        }
        Action::ForAll {
            var,
            pos_var,
            set,
            body,
        } => {
            let binder = match pos_var {
                Some(p) => format!("({var}, {p})"),
                None => var.clone(),
            };
            let _ = writeln!(out, "{pad}forall {binder} in {} do", set_str(set));
            for b in body {
                action_str(b, indent + 1, out);
            }
            let _ = writeln!(out, "{pad}end;");
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_spec;

    const CTP: &str = r#"
OPTIMIZATION CTP
TYPE
  Stmt: Si, Sj, Sl;
PRECOND
  Code_Pattern
    any Si: Si.opc == assign AND type(Si.opr_2) == const;
  Depend
    any (Sj, pos): flow_dep(Si, Sj, (=));
    no (Sl, pos2): flow_dep(Sl, Sj) AND (Sl != Si)
                   AND operand(Sj, pos2) == operand(Sj, pos);
ACTION
  modify(operand(Sj, pos), Si.opr_2);
END
"#;

    #[test]
    fn roundtrip_ctp() {
        let ast1 = parse_spec(CTP).unwrap();
        let printed = super::pretty(&ast1);
        let ast2 = parse_spec(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(ast1, ast2, "printed:\n{printed}");
    }

    #[test]
    fn roundtrip_forall() {
        let src = r#"
OPTIMIZATION X MODE interactive
TYPE Stmt: Si; Loop: L;
PRECOND
  Code_Pattern
    any L;
  Depend
    all (Si, p): mem(Si, L), flow_dep(L.head, Si);
ACTION
  forall (S, q) in Si do
    modify(operand(S, q), L.init);
    copy(S, L.end, S2);
  end;
  add(L.head, [assign, L.lcv, L.init], S3);
END
"#;
        let ast1 = parse_spec(src).unwrap();
        let printed = super::pretty(&ast1);
        let ast2 = parse_spec(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(ast1, ast2, "printed:\n{printed}");
    }
}

#[cfg(test)]
mod prop_tests {
    use crate::ast::*;
    use crate::{parse_spec, validate_spec};
    use proptest::prelude::*;

    fn dir_elem() -> impl Strategy<Value = DirElem> {
        prop_oneof![
            Just(DirElem::Lt),
            Just(DirElem::Eq),
            Just(DirElem::Gt),
            Just(DirElem::Any),
        ]
    }

    fn dep_kind() -> impl Strategy<Value = DepKind> {
        prop_oneof![
            Just(DepKind::Flow),
            Just(DepKind::Anti),
            Just(DepKind::Output),
            Just(DepKind::Control),
        ]
    }

    fn stmt_ref(base: String) -> impl Strategy<Value = ValExpr> {
        prop_oneof![
            Just(ValExpr::Name(base.clone())),
            Just(ValExpr::Ref(ElemRef {
                base,
                path: vec![Attr::Nxt],
            })),
        ]
    }

    /// A format condition over one declared statement variable.
    fn format_expr(var: String) -> impl Strategy<Value = BoolExpr> {
        let opc = {
            let var = var.clone();
            prop_oneof![Just("assign"), Just("add"), Just("mul")].prop_map(move |o| {
                BoolExpr::Cmp(
                    ValExpr::Ref(ElemRef {
                        base: var.clone(),
                        path: vec![Attr::Opc],
                    }),
                    CmpOp::Eq,
                    ValExpr::Name(o.to_string()),
                )
            })
        };
        let ty = {
            let var = var.clone();
            prop_oneof![
                Just(OperandClass::Const),
                Just(OperandClass::Var),
                Just(OperandClass::Elem)
            ]
            .prop_map(move |c| {
                BoolExpr::TypeIs(
                    ValExpr::Ref(ElemRef {
                        base: var.clone(),
                        path: vec![Attr::Opr(2)],
                    }),
                    c,
                    true,
                )
            })
        };
        prop_oneof![
            opc.clone(),
            ty.clone(),
            (opc, ty).prop_map(|(a, b)| BoolExpr::And(Box::new(a), Box::new(b))),
        ]
    }

    /// Whole-specification strategy: always well-formed (validates).
    fn spec_strategy() -> impl Strategy<Value = Spec> {
        (
            2usize..4,                                      // statement vars
            proptest::option::of(format_expr("S0".into())), // S0's format
            dep_kind(),
            proptest::option::of(proptest::collection::vec(dir_elem(), 1..3)),
            prop_oneof![Just(Quant::Any), Just(Quant::No), Just(Quant::All)],
            any::<bool>(), // with position var?
            any::<bool>(), // delete vs modify action
        )
            .prop_map(|(nstmts, format, kind, dirs, quant, with_pos, del)| {
                let stmt_names: Vec<String> = (0..nstmts).map(|i| format!("S{i}")).collect();
                let decls = vec![TypeDecl {
                    ty: ElemType::Stmt,
                    groups: stmt_names.iter().map(|n| vec![n.clone()]).collect(),
                }];
                let patterns = vec![PatternClause {
                    quant: Quant::Any,
                    vars: vec!["S0".into()],
                    format,
                }];
                let depends = vec![DependClause {
                    quant,
                    vars: vec!["S1".into()],
                    pos_vars: vec![if with_pos { Some("p".into()) } else { None }],
                    members: Vec::new(),
                    cond: BoolExpr::Dep {
                        kind,
                        from: ValExpr::Name("S0".into()),
                        to: ValExpr::Name("S1".into()),
                        dirs,
                    },
                }];
                // `no`-bound variables are not available to actions; act on
                // the pattern-bound S0 instead.
                let action_target = "S0".to_string();
                let actions = vec![if del {
                    Action::Delete(ValExpr::Name(action_target))
                } else {
                    Action::Modify(
                        ValExpr::Ref(ElemRef {
                            base: action_target,
                            path: vec![Attr::Opr(2)],
                        }),
                        ValExpr::Int(7),
                    )
                }];
                Spec {
                    name: "GEN".into(),
                    mode: Mode::Auto,
                    decls,
                    patterns,
                    depends,
                    actions,
                }
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_specs_roundtrip_and_validate(spec in spec_strategy()) {
            prop_assert!(validate_spec(&spec).is_ok(), "generated spec invalid");
            let printed = super::pretty(&spec);
            let reparsed = parse_spec(&printed);
            prop_assert!(reparsed.is_ok(), "reprint failed: {:?}\n{}", reparsed.err(), printed);
            prop_assert_eq!(reparsed.unwrap(), spec, "{}", printed);
        }

        #[test]
        fn stmt_refs_print_parseably(r in stmt_ref("S0".into())) {
            // Smoke property for the reference printer used above.
            let spec = Spec {
                name: "T".into(),
                mode: Mode::Auto,
                decls: vec![TypeDecl { ty: ElemType::Stmt, groups: vec![vec!["S0".into()]] }],
                patterns: vec![PatternClause { quant: Quant::Any, vars: vec!["S0".into()], format: None }],
                depends: vec![],
                actions: vec![Action::Delete(r)],
            };
            let printed = super::pretty(&spec);
            prop_assert_eq!(parse_spec(&printed).unwrap(), spec);
        }
    }
}
