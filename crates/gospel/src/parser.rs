//! Recursive-descent parser for GOSpeL.

use crate::ast::*;
use crate::lexer::{LexError, Token, TokenKind};
use std::fmt;

/// Syntax error with line information.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// Source line.
    pub line: u32,
}

impl ParseError {
    pub(crate) fn from_lex(e: LexError) -> ParseError {
        ParseError {
            message: e.to_string(),
            line: e.line,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on line {}", self.message, self.line)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

/// Parses a token stream into a [`Spec`].
///
/// # Errors
///
/// Returns the first syntax error found.
pub fn parse_tokens(toks: &[Token]) -> Result<Spec, ParseError> {
    Parser { toks, pos: 0 }.spec()
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        if let TokenKind::Ident(s) = self.peek() {
            let s = s.clone();
            self.bump();
            Ok(s)
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    // ---- top level ---------------------------------------------------------

    fn spec(&mut self) -> Result<Spec, ParseError> {
        self.expect_kw("optimization")?;
        let name = self.ident("optimization name")?;
        let mode = if self.eat_kw("mode") {
            if self.eat_kw("interactive") {
                Mode::Interactive
            } else {
                self.expect_kw("auto")?;
                Mode::Auto
            }
        } else {
            Mode::Auto
        };

        self.expect_kw("type")?;
        let mut decls = Vec::new();
        while !self.peek_kw("precond") {
            decls.push(self.type_decl()?);
        }
        self.expect_kw("precond")?;
        self.expect_kw("code_pattern")?;
        let mut patterns = Vec::new();
        while !(self.peek_kw("depend") || self.peek_kw("action")) {
            patterns.push(self.pattern_clause()?);
        }
        let mut depends = Vec::new();
        if self.eat_kw("depend") {
            while !self.peek_kw("action") {
                depends.push(self.depend_clause()?);
            }
        }
        self.expect_kw("action")?;
        let actions = self.actions(&["end"])?;
        self.expect_kw("end")?;
        Ok(Spec {
            name,
            mode,
            decls,
            patterns,
            depends,
            actions,
        })
    }

    fn type_decl(&mut self) -> Result<TypeDecl, ParseError> {
        let kw = self.ident("element type")?;
        let ty = match kw.to_ascii_lowercase().as_str() {
            "stmt" | "statement" => ElemType::Stmt,
            "loop" => ElemType::Loop,
            "nested_loops" => ElemType::NestedLoops,
            "tight_loops" => ElemType::TightLoops,
            "adjacent_loops" => ElemType::AdjacentLoops,
            other => return self.err(format!("unknown element type `{other}`")),
        };
        self.expect(&TokenKind::Colon, "`:` after element type")?;
        let mut groups = Vec::new();
        loop {
            if *self.peek() == TokenKind::LParen {
                self.bump();
                let a = self.ident("identifier")?;
                self.expect(&TokenKind::Comma, "`,` in pair")?;
                let b = self.ident("identifier")?;
                self.expect(&TokenKind::RParen, "`)` after pair")?;
                groups.push(vec![a, b]);
            } else {
                groups.push(vec![self.ident("identifier")?]);
            }
            if *self.peek() == TokenKind::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::Semi, "`;` after declaration")?;
        // Arity check is syntactic enough to do here.
        for g in &groups {
            if g.len() != ty.arity() {
                return self.err(format!(
                    "{} declares {} identifier(s) per group, got {}",
                    ty.keyword(),
                    ty.arity(),
                    g.len()
                ));
            }
        }
        Ok(TypeDecl { ty, groups })
    }

    fn quant(&mut self) -> Result<Quant, ParseError> {
        if self.eat_kw("any") {
            Ok(Quant::Any)
        } else if self.eat_kw("all") {
            Ok(Quant::All)
        } else if self.eat_kw("no") {
            Ok(Quant::No)
        } else {
            self.err(format!("expected quantifier, found {:?}", self.peek()))
        }
    }

    fn pattern_clause(&mut self) -> Result<PatternClause, ParseError> {
        let quant = self.quant()?;
        let mut vars = Vec::new();
        if *self.peek() == TokenKind::LParen {
            self.bump();
            loop {
                vars.push(self.ident("element variable")?);
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "`)` after variables")?;
        } else {
            vars.push(self.ident("element variable")?);
        }
        let format = if *self.peek() == TokenKind::Colon {
            self.bump();
            Some(self.bool_expr()?)
        } else {
            None
        };
        self.expect(&TokenKind::Semi, "`;` after pattern clause")?;
        Ok(PatternClause {
            quant,
            vars,
            format,
        })
    }

    fn depend_clause(&mut self) -> Result<DependClause, ParseError> {
        let quant = self.quant()?;
        let mut vars = Vec::new();
        let mut pos_vars = Vec::new();
        // Bindings up to the `:` — possibly none (pure check: `no: cond;`).
        while *self.peek() != TokenKind::Colon {
            if *self.peek() == TokenKind::LParen {
                self.bump();
                let v = self.ident("element variable")?;
                self.expect(&TokenKind::Comma, "`,` in (var, pos)")?;
                let p = self.ident("position variable")?;
                self.expect(&TokenKind::RParen, "`)` after (var, pos)")?;
                vars.push(v);
                pos_vars.push(Some(p));
            } else {
                vars.push(self.ident("element variable")?);
                pos_vars.push(None);
            }
            if *self.peek() == TokenKind::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::Colon, "`:` after dependence bindings")?;

        // Optional membership constraints, then the conditions.
        let mut members = Vec::new();
        if self.peek_kw("mem") || self.peek_kw("nmem") {
            loop {
                members.push(self.mem_expr()?);
                if self.eat_kw("and") {
                    if self.peek_kw("mem") || self.peek_kw("nmem") {
                        continue;
                    }
                    // The AND belonged to the condition list; we already
                    // consumed it — parse the conditions now.
                    let cond = self.bool_expr()?;
                    self.expect(&TokenKind::Semi, "`;` after dependence clause")?;
                    return Ok(DependClause {
                        quant,
                        vars,
                        pos_vars,
                        members,
                        cond,
                    });
                }
                break;
            }
            self.expect(&TokenKind::Comma, "`,` between membership and conditions")?;
        }
        let cond = self.bool_expr()?;
        self.expect(&TokenKind::Semi, "`;` after dependence clause")?;
        Ok(DependClause {
            quant,
            vars,
            pos_vars,
            members,
            cond,
        })
    }

    fn mem_expr(&mut self) -> Result<MemExpr, ParseError> {
        let negated = if self.eat_kw("nmem") {
            true
        } else {
            self.expect_kw("mem")?;
            false
        };
        self.expect(&TokenKind::LParen, "`(` after mem")?;
        let elem = self.val_expr()?;
        self.expect(&TokenKind::Comma, "`,` in mem")?;
        let set = self.set_expr()?;
        self.expect(&TokenKind::RParen, "`)` after mem")?;
        Ok(MemExpr {
            elem,
            set,
            negated,
        })
    }

    fn set_expr(&mut self) -> Result<SetExpr, ParseError> {
        let mut lhs = self.set_atom()?;
        loop {
            if self.eat_kw("union") {
                let rhs = self.set_atom()?;
                lhs = SetExpr::Union(Box::new(lhs), Box::new(rhs));
            } else if self.eat_kw("inter") {
                let rhs = self.set_atom()?;
                lhs = SetExpr::Inter(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn set_atom(&mut self) -> Result<SetExpr, ParseError> {
        if self.eat_kw("path") {
            self.expect(&TokenKind::LParen, "`(` after path")?;
            let a = self.val_expr()?;
            self.expect(&TokenKind::Comma, "`,` in path")?;
            let b = self.val_expr()?;
            self.expect(&TokenKind::RParen, "`)` after path")?;
            return Ok(SetExpr::Path(a, b));
        }
        let name = self.ident("set name")?;
        // `L.body` is sugar for the loop's body set.
        if *self.peek() == TokenKind::Dot {
            self.bump();
            self.expect_kw("body")?;
        }
        Ok(SetExpr::Named(name))
    }

    // ---- boolean expressions ------------------------------------------------

    fn bool_expr(&mut self) -> Result<BoolExpr, ParseError> {
        let mut lhs = self.bool_term()?;
        while self.eat_kw("or") {
            let rhs = self.bool_term()?;
            lhs = BoolExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bool_term(&mut self) -> Result<BoolExpr, ParseError> {
        let mut lhs = self.bool_factor()?;
        while self.eat_kw("and") {
            let rhs = self.bool_factor()?;
            lhs = BoolExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bool_factor(&mut self) -> Result<BoolExpr, ParseError> {
        if self.eat_kw("not") {
            self.expect(&TokenKind::LParen, "`(` after NOT")?;
            let inner = self.bool_expr()?;
            self.expect(&TokenKind::RParen, "`)` after NOT(...)")?;
            return Ok(BoolExpr::Not(Box::new(inner)));
        }
        if *self.peek() == TokenKind::LParen {
            self.bump();
            let inner = self.bool_expr()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok(inner);
        }
        // dependence functions
        for (kw, kind) in [
            ("flow_dep", DepKind::Flow),
            ("anti_dep", DepKind::Anti),
            ("out_dep", DepKind::Output),
            ("ctrl_dep", DepKind::Control),
        ] {
            if self.peek_kw(kw) {
                self.bump();
                self.expect(&TokenKind::LParen, "`(` after dependence")?;
                let from = self.val_expr()?;
                self.expect(&TokenKind::Comma, "`,` in dependence")?;
                let to = self.val_expr()?;
                let dirs = if *self.peek() == TokenKind::Comma {
                    self.bump();
                    Some(self.dirvec()?)
                } else {
                    None
                };
                self.expect(&TokenKind::RParen, "`)` after dependence")?;
                return Ok(BoolExpr::Dep {
                    kind,
                    from,
                    to,
                    dirs,
                });
            }
        }
        // type(x) == const
        if self.peek_kw("type") {
            self.bump();
            self.expect(&TokenKind::LParen, "`(` after type")?;
            let v = self.val_expr()?;
            self.expect(&TokenKind::RParen, "`)` after type")?;
            let positive = match self.bump() {
                TokenKind::EqEq => true,
                TokenKind::Ne => false,
                other => return self.err(format!("expected == or != after type(), got {other:?}")),
            };
            let cls = self.operand_class()?;
            return Ok(BoolExpr::TypeIs(v, cls, positive));
        }
        // plain comparison
        let lhs = self.val_expr()?;
        let op = match self.bump() {
            TokenKind::EqEq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => return self.err(format!("expected comparison operator, got {other:?}")),
        };
        let rhs = self.val_expr()?;
        Ok(BoolExpr::Cmp(lhs, op, rhs))
    }

    fn operand_class(&mut self) -> Result<OperandClass, ParseError> {
        let name = self.ident("operand class")?;
        match name.to_ascii_lowercase().as_str() {
            "const" | "cons" | "constant" => Ok(OperandClass::Const),
            "var" | "variable" => Ok(OperandClass::Var),
            "elem" | "element" | "array" => Ok(OperandClass::Elem),
            "none" | "empty" => Ok(OperandClass::None),
            other => self.err(format!("unknown operand class `{other}`")),
        }
    }

    fn dirvec(&mut self) -> Result<Vec<DirElem>, ParseError> {
        self.expect(&TokenKind::LParen, "`(` opening direction vector")?;
        let mut dirs = Vec::new();
        loop {
            let d = match self.bump() {
                TokenKind::Lt => DirElem::Lt,
                TokenKind::Gt => DirElem::Gt,
                TokenKind::Assign => DirElem::Eq,
                TokenKind::Star => DirElem::Any,
                TokenKind::Ident(s) if s.eq_ignore_ascii_case("any") => DirElem::Any,
                other => {
                    return self.err(format!("expected direction (<, >, =, *), got {other:?}"))
                }
            };
            dirs.push(d);
            if *self.peek() == TokenKind::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "`)` closing direction vector")?;
        Ok(dirs)
    }

    // ---- value expressions ---------------------------------------------------

    fn val_expr(&mut self) -> Result<ValExpr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(ValExpr::Int(n))
            }
            TokenKind::Real(r) => {
                self.bump();
                Ok(ValExpr::Real(r))
            }
            TokenKind::Minus => {
                self.bump();
                match self.bump() {
                    TokenKind::Int(n) => Ok(ValExpr::Int(-n)),
                    TokenKind::Real(r) => Ok(ValExpr::Real(-r)),
                    other => self.err(format!("expected number after `-`, got {other:?}")),
                }
            }
            TokenKind::Ident(name) => {
                if name.eq_ignore_ascii_case("operand") {
                    self.bump();
                    self.expect(&TokenKind::LParen, "`(` after operand")?;
                    let s = self.val_expr()?;
                    self.expect(&TokenKind::Comma, "`,` in operand()")?;
                    let p = self.val_expr()?;
                    self.expect(&TokenKind::RParen, "`)` after operand()")?;
                    return Ok(ValExpr::OperandFn(Box::new(s), Box::new(p)));
                }
                if name.eq_ignore_ascii_case("eval") {
                    self.bump();
                    self.expect(&TokenKind::LParen, "`(` after eval")?;
                    let a = self.val_expr()?;
                    self.expect(&TokenKind::Comma, "`,` in eval()")?;
                    let op = self.val_expr()?;
                    self.expect(&TokenKind::Comma, "`,` in eval()")?;
                    let b = self.val_expr()?;
                    self.expect(&TokenKind::RParen, "`)` after eval()")?;
                    return Ok(ValExpr::Eval(Box::new(a), Box::new(op), Box::new(b)));
                }
                if name.eq_ignore_ascii_case("bump") {
                    self.bump();
                    self.expect(&TokenKind::LParen, "`(` after bump")?;
                    let x = self.val_expr()?;
                    self.expect(&TokenKind::Comma, "`,` in bump()")?;
                    let v = self.val_expr()?;
                    self.expect(&TokenKind::Comma, "`,` in bump()")?;
                    let k = self.val_expr()?;
                    self.expect(&TokenKind::RParen, "`)` after bump()")?;
                    return Ok(ValExpr::Bump(Box::new(x), Box::new(v), Box::new(k)));
                }
                self.bump();
                if *self.peek() == TokenKind::Dot {
                    let mut path = Vec::new();
                    while *self.peek() == TokenKind::Dot {
                        self.bump();
                        path.push(self.attr()?);
                    }
                    Ok(ValExpr::Ref(ElemRef { base: name, path }))
                } else {
                    Ok(ValExpr::Name(name))
                }
            }
            other => self.err(format!("expected value expression, got {other:?}")),
        }
    }

    fn attr(&mut self) -> Result<Attr, ParseError> {
        let name = self.ident("attribute")?;
        Ok(match name.to_ascii_lowercase().as_str() {
            "nxt" | "next" => Attr::Nxt,
            "prev" => Attr::Prev,
            "head" => Attr::Head,
            "end" => Attr::End,
            "body" => Attr::Body,
            "lcv" => Attr::Lcv,
            "init" => Attr::Init,
            "final" => Attr::Final,
            "opc" => Attr::Opc,
            "opr_1" => Attr::Opr(1),
            "opr_2" => Attr::Opr(2),
            "opr_3" => Attr::Opr(3),
            other => return self.err(format!("unknown attribute `.{other}`")),
        })
    }

    // ---- actions ---------------------------------------------------------------

    fn actions(&mut self, until: &[&str]) -> Result<Vec<Action>, ParseError> {
        let mut out = Vec::new();
        loop {
            if until.iter().any(|kw| self.peek_kw(kw)) {
                return Ok(out);
            }
            if *self.peek() == TokenKind::Eof {
                return self.err("unexpected end of specification in ACTION section");
            }
            out.push(self.action()?);
        }
    }

    fn action(&mut self) -> Result<Action, ParseError> {
        if self.eat_kw("delete") {
            self.expect(&TokenKind::LParen, "`(`")?;
            let a = self.val_expr()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            self.expect(&TokenKind::Semi, "`;` after delete")?;
            return Ok(Action::Delete(a));
        }
        if self.eat_kw("copy") {
            self.expect(&TokenKind::LParen, "`(`")?;
            let a = self.val_expr()?;
            self.expect(&TokenKind::Comma, "`,`")?;
            let b = self.val_expr()?;
            self.expect(&TokenKind::Comma, "`,`")?;
            let c = self.ident("new statement name")?;
            self.expect(&TokenKind::RParen, "`)`")?;
            self.expect(&TokenKind::Semi, "`;` after copy")?;
            return Ok(Action::Copy(a, b, c));
        }
        if self.eat_kw("move") {
            self.expect(&TokenKind::LParen, "`(`")?;
            let a = self.val_expr()?;
            self.expect(&TokenKind::Comma, "`,`")?;
            let b = self.val_expr()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            self.expect(&TokenKind::Semi, "`;` after move")?;
            return Ok(Action::Move(a, b));
        }
        if self.eat_kw("add") {
            self.expect(&TokenKind::LParen, "`(`")?;
            let a = self.val_expr()?;
            self.expect(&TokenKind::Comma, "`,`")?;
            let desc = self.elem_desc()?;
            self.expect(&TokenKind::Comma, "`,`")?;
            let b = self.ident("new statement name")?;
            self.expect(&TokenKind::RParen, "`)`")?;
            self.expect(&TokenKind::Semi, "`;` after add")?;
            return Ok(Action::Add(a, desc, b));
        }
        if self.eat_kw("modify") {
            self.expect(&TokenKind::LParen, "`(`")?;
            let place = self.val_expr()?;
            self.expect(&TokenKind::Comma, "`,`")?;
            let new = self.val_expr()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            self.expect(&TokenKind::Semi, "`;` after modify")?;
            return Ok(Action::Modify(place, new));
        }
        if self.eat_kw("forall") {
            let (var, pos_var) = if *self.peek() == TokenKind::LParen {
                self.bump();
                let v = self.ident("element variable")?;
                self.expect(&TokenKind::Comma, "`,`")?;
                let p = self.ident("position variable")?;
                self.expect(&TokenKind::RParen, "`)`")?;
                (v, Some(p))
            } else {
                (self.ident("element variable")?, None)
            };
            self.expect_kw("in")?;
            let set = self.set_expr()?;
            self.expect_kw("do")?;
            let body = self.actions(&["end"])?;
            self.expect_kw("end")?;
            self.expect(&TokenKind::Semi, "`;` after forall … end")?;
            return Ok(Action::ForAll {
                var,
                pos_var,
                set,
                body,
            });
        }
        self.err(format!("expected an action, found {:?}", self.peek()))
    }

    fn elem_desc(&mut self) -> Result<ElemDesc, ParseError> {
        self.expect(&TokenKind::LBracket, "`[` opening statement template")?;
        let opc = self.ident("opcode name")?;
        let mut oprs: Vec<ValExpr> = Vec::new();
        while *self.peek() == TokenKind::Comma {
            self.bump();
            oprs.push(self.val_expr()?);
        }
        if oprs.len() > 3 {
            return self.err("a statement template has at most three operands");
        }
        self.expect(&TokenKind::RBracket, "`]` closing statement template")?;
        let mut it = oprs.into_iter();
        Ok(ElemDesc {
            opc,
            opr_1: it.next(),
            opr_2: it.next(),
            opr_3: it.next(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_spec;

    const CTP: &str = r#"
OPTIMIZATION CTP
TYPE
  Stmt: Si, Sj, Sl;
PRECOND
  Code_Pattern
    any Si: Si.opc == assign AND type(Si.opr_2) == const;
  Depend
    any (Sj, pos): flow_dep(Si, Sj, (=));
    no (Sl, pos2): flow_dep(Sl, Sj) AND (Sl != Si)
                   AND operand(Sj, pos2) == operand(Sj, pos);
ACTION
  modify(operand(Sj, pos), Si.opr_2);
END
"#;

    const INX: &str = r#"
OPTIMIZATION INX MODE interactive
TYPE
  Stmt: Sm, Sn;
  Tight_Loops: (L1, L2);
PRECOND
  Code_Pattern
    any (L1, L2);
  Depend
    no: flow_dep(L1.head, L2.head);
    no Sm, Sn: mem(Sm, L2) AND mem(Sn, L2), flow_dep(Sn, Sm, (<,>));
ACTION
  move(L1.head, L2.head);
  move(L1.end, L2.end.prev);
END
"#;

    #[test]
    fn parses_ctp() {
        let s = parse_spec(CTP).unwrap();
        assert_eq!(s.name, "CTP");
        assert_eq!(s.mode, Mode::Auto);
        assert_eq!(s.decls.len(), 1);
        assert_eq!(s.patterns.len(), 1);
        assert_eq!(s.depends.len(), 2);
        assert_eq!(s.actions.len(), 1);
        // the any clause binds (Sj, pos)
        assert_eq!(s.depends[0].vars, vec!["Sj"]);
        assert_eq!(s.depends[0].pos_vars, vec![Some("pos".to_string())]);
        match &s.depends[0].cond {
            BoolExpr::Dep { kind, dirs, .. } => {
                assert_eq!(*kind, DepKind::Flow);
                assert_eq!(dirs.as_deref(), Some(&[DirElem::Eq][..]));
            }
            other => panic!("expected dep condition, got {other:?}"),
        }
    }

    #[test]
    fn parses_inx() {
        let s = parse_spec(INX).unwrap();
        assert_eq!(s.mode, Mode::Interactive);
        assert_eq!(s.decls[1].ty, ElemType::TightLoops);
        assert_eq!(s.decls[1].groups, vec![vec!["L1", "L2"]]);
        // first depend clause binds nothing (pure check)
        assert!(s.depends[0].vars.is_empty());
        // second binds two statements with membership constraints
        assert_eq!(s.depends[1].vars, vec!["Sm", "Sn"]);
        assert_eq!(s.depends[1].members.len(), 2);
        match &s.depends[1].cond {
            BoolExpr::Dep { dirs, .. } => {
                assert_eq!(dirs.as_deref(), Some(&[DirElem::Lt, DirElem::Gt][..]));
            }
            other => panic!("expected dep, got {other:?}"),
        }
        // actions navigate attribute paths
        match &s.actions[1] {
            Action::Move(ValExpr::Ref(a), ValExpr::Ref(b)) => {
                assert_eq!(a.path, vec![Attr::End]);
                assert_eq!(b.path, vec![Attr::End, Attr::Prev]);
            }
            other => panic!("expected move, got {other:?}"),
        }
    }

    #[test]
    fn parses_forall_and_add() {
        let src = r#"
OPTIMIZATION X
TYPE
  Stmt: Si;
  Loop: L;
PRECOND
  Code_Pattern
    any L;
  Depend
    all (Si, p): mem(Si, L), flow_dep(L.head, Si);
ACTION
  forall (S, p) in Si do
    modify(operand(S, p), L.init);
  end;
  add(L.head, [assign, L.lcv, L.init], Snew);
  delete(L.end);
END
"#;
        let s = parse_spec(src).unwrap();
        assert_eq!(s.actions.len(), 3);
        match &s.actions[0] {
            Action::ForAll { var, pos_var, body, .. } => {
                assert_eq!(var, "S");
                assert_eq!(pos_var.as_deref(), Some("p"));
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected forall, got {other:?}"),
        }
        match &s.actions[1] {
            Action::Add(_, desc, name) => {
                assert_eq!(desc.opc, "assign");
                assert!(desc.opr_1.is_some());
                assert!(desc.opr_3.is_none());
                assert_eq!(name, "Snew");
            }
            other => panic!("expected add, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_arity_declaration() {
        let src = "OPTIMIZATION X TYPE Tight_Loops: L1; PRECOND Code_Pattern any L1; ACTION delete(L1); END";
        assert!(parse_spec(src).is_err());
    }

    #[test]
    fn rejects_unknown_attribute() {
        let src = "OPTIMIZATION X TYPE Stmt: S; PRECOND Code_Pattern any S: S.bogus == 1; ACTION delete(S); END";
        assert!(parse_spec(src).is_err());
    }

    #[test]
    fn error_carries_line() {
        let e = parse_spec("OPTIMIZATION X\nTYPE\n  Junk: S;\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn eval_and_bump_extensions() {
        let src = r#"
OPTIMIZATION CFO
TYPE Stmt: Si;
PRECOND
  Code_Pattern
    any Si: Si.opc == add AND type(Si.opr_2) == const AND type(Si.opr_3) == const;
ACTION
  modify(Si.opr_2, eval(Si.opr_2, add, Si.opr_3));
  modify(Si.opr_3, bump(Si.opr_3, Si.opr_1, 1));
END
"#;
        let s = parse_spec(src).unwrap();
        match &s.actions[0] {
            Action::Modify(_, ValExpr::Eval(_, op, _)) => {
                assert_eq!(**op, ValExpr::Name("add".into()))
            }
            other => panic!("expected eval modify, got {other:?}"),
        }
        match &s.actions[1] {
            Action::Modify(_, ValExpr::Bump(_, _, k)) => assert_eq!(**k, ValExpr::Int(1)),
            other => panic!("expected bump modify, got {other:?}"),
        }
    }
}
