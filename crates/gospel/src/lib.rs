//! # gospel-lang — the General Optimization Specification Language
//!
//! GOSpeL is the declarative language of *Automatic Generation of Global
//! Optimizers* (Whitfield & Soffa, PLDI 1991). An optimization is written as
//! three sections:
//!
//! * **TYPE** — declares the code elements the optimization manipulates:
//!   statements, loops, and nested / tightly-nested / adjacent loop pairs;
//! * **PRECOND** — a `Code_Pattern` part describing the syntactic shape of
//!   the elements (opcode and operand formats) followed by a `Depend` part
//!   stating the flow/anti/output/control dependence conditions, with
//!   direction vectors for loop-carried dependences;
//! * **ACTION** — the transformation, composed from the five primitives
//!   `delete`, `copy`, `move`, `add` and `modify`, optionally iterated with
//!   `forall` over a set collected by an `all` quantifier.
//!
//! The paper's Figure 1 (constant propagation) reads, in this
//! implementation's concrete syntax:
//!
//! ```text
//! OPTIMIZATION CTP
//! TYPE
//!   Stmt: Si, Sj, Sl;
//! PRECOND
//!   Code_Pattern
//!     any Si: Si.opc == assign AND type(Si.opr_2) == const;
//!   Depend
//!     any (Sj, pos): flow_dep(Si, Sj, (=));
//!     no (Sl, pos2): flow_dep(Sl, Sj) AND (Sl != Si)
//!                    AND operand(Sj, pos2) == operand(Sj, pos);
//! ACTION
//!   modify(operand(Sj, pos), Si.opr_2);
//! END
//! ```
//!
//! This crate provides the lexer, parser ([`parse_spec`]), AST ([`ast`]),
//! semantic validation ([`validate_spec`]) and a pretty-printer. Turning a
//! validated specification into an executable optimizer is the job of the
//! `genesis` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod lexer;
mod parser;
mod pretty;
mod validate;

pub use lexer::{LexError, Token, TokenKind};
pub use parser::ParseError;
pub use pretty::{pretty, pretty_bool, pretty_depend_clause, pretty_pattern_clause};
pub use validate::{validate_spec, SpecError, SpecInfo, VarClass};

/// Parses a GOSpeL specification.
///
/// # Errors
///
/// Returns a [`ParseError`] for lexical or syntax errors.
pub fn parse_spec(src: &str) -> Result<ast::Spec, ParseError> {
    let toks = lexer::lex(src).map_err(ParseError::from_lex)?;
    parser::parse_tokens(&toks)
}

/// Parses *and validates* a specification: the form the generator accepts.
///
/// # Errors
///
/// Returns [`SpecError`] for syntax errors or semantic defects (undeclared
/// names, ill-typed attribute paths, malformed quantifier structure).
pub fn parse_validated(src: &str) -> Result<(ast::Spec, SpecInfo), SpecError> {
    let spec = parse_spec(src).map_err(SpecError::Parse)?;
    let info = validate_spec(&spec)?;
    Ok((spec, info))
}
