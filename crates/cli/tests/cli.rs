//! End-to-end tests of the `genesis-opt` binary.

use std::io::Write;
use std::process::{Command, Stdio};

const PROG: &str = "\
program demo
  integer n, i
  real a(50)
  n = 50
  do i = 1, n
    a(i) = 1.0
  end do
  write a(1)
end
";

fn write_prog() -> tempfile_path::TempPath {
    tempfile_path::write(PROG)
}

/// Minimal temp-file helper (std only).
mod tempfile_path {
    use std::path::PathBuf;

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    pub fn write(contents: &str) -> TempPath {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "genesis-opt-test-{}-{:?}-{}.mf",
            std::process::id(),
            std::thread::current().id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&p, contents).expect("write temp program");
        TempPath(p)
    }
}

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_genesis-opt"))
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "{args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8")
}

#[test]
fn specs_lists_the_catalog() {
    let out = run_ok(&["specs"]);
    for name in ["CPP", "CTP", "DCE", "ICM", "INX", "CRC", "BMP", "PAR", "LUR", "FUS", "CFO"] {
        assert!(out.contains(name), "missing {name}:\n{out}");
    }
}

#[test]
fn show_points_apply_pipeline() {
    let prog = write_prog();
    let path = prog.0.to_str().unwrap();

    let shown = run_ok(&["show", path]);
    assert!(shown.contains("do i = 1, n"), "{shown}");

    let points = run_ok(&["points", path, "CTP"]);
    assert!(points.contains("application point(s)"), "{points}");

    let applied = run_ok(&["apply", path, "CTP,PAR"]);
    assert!(applied.contains("pardo i = 1, 50"), "{applied}");
    assert!(applied.contains("write a(1)"), "{applied}");
}

#[test]
fn apply_emits_source_with_flag() {
    let prog = write_prog();
    let path = prog.0.to_str().unwrap();
    let out = run_ok(&["apply", path, "CTP,PAR", "--source"]);
    assert!(out.contains("pardo i = 1, 50"), "{out}");
    assert!(out.contains("program demo"), "{out}");
    // the emitted source recompiles through the same tool
    let reprog = tempfile_path::write(&out[out.find("program").unwrap()..]);
    let reout = run_ok(&["show", reprog.0.to_str().unwrap()]);
    assert!(reout.contains("pardo"), "{reout}");
}

#[test]
fn emit_prints_figure_6_shape() {
    let out = run_ok(&["emit", "CTP"]);
    for piece in ["set_up_CTP", "match_CTP", "pre_CTP", "act_CTP", "set_up_OPT"] {
        assert!(out.contains(piece), "missing {piece}");
    }
    let rust = run_ok(&["emit", "CTP", "--lang", "rust"]);
    assert!(rust.contains("pub fn apply_ctp"), "{rust}");
}

#[test]
fn interactive_session_over_stdin() {
    let prog = write_prog();
    let path = prog.0.to_str().unwrap();
    let mut child = bin()
        .args(["interactive", path])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"list\napply CTP\nsource\nquit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("CTP"), "{text}");
    assert!(text.contains("application(s)"), "{text}");
    assert!(text.contains("program demo"), "{text}");
}

#[test]
fn unknown_command_fails_with_message() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn user_spec_file_registers() {
    let prog = write_prog();
    let path = prog.0.to_str().unwrap();
    let spec = tempfile_path::write(
        "OPTIMIZATION MY TYPE Stmt: S; PRECOND Code_Pattern any S: S.opc == assign AND S.opr_1 == S.opr_2; ACTION delete(S); END",
    );
    let out = run_ok(&["points", path, "MY", "--spec", spec.0.to_str().unwrap()]);
    assert!(out.contains("0 application point(s)"), "{out}");
}

/// Runs the binary expecting failure; returns stderr.
fn run_err(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("binary runs");
    assert!(
        !out.status.success(),
        "{args:?} unexpectedly succeeded:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Every failure must produce a single-line `error:` diagnostic on stderr
/// (plus, for validation failures, one report line per rejection).
fn last_error_line(stderr: &str) -> &str {
    let line = stderr
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .unwrap_or("");
    assert!(line.starts_with("error:"), "no error line in: {stderr}");
    line
}

#[test]
fn missing_program_file_fails_with_one_line() {
    let err = run_err(&["show", "/no/such/file.mf"]);
    let line = last_error_line(&err);
    assert!(line.contains("/no/such/file.mf"), "{line}");
}

#[test]
fn unreadable_program_file_fails_with_one_line() {
    // A directory is unreadable as a program file on every platform.
    let dir = std::env::temp_dir();
    let err = run_err(&["show", dir.to_str().unwrap()]);
    last_error_line(&err);
}

#[test]
fn malformed_spec_file_fails_with_one_line() {
    let prog = write_prog();
    let spec = tempfile_path::write("OPTIMIZATION oops THIS IS NOT GOSPEL");
    let err = run_err(&[
        "apply",
        prog.0.to_str().unwrap(),
        "CTP",
        "--spec",
        spec.0.to_str().unwrap(),
    ]);
    let line = last_error_line(&err);
    assert!(line.contains(spec.0.to_str().unwrap()), "{line}");
}

#[test]
fn bad_numeric_flag_fails_with_context() {
    let prog = write_prog();
    let err = run_err(&["run", prog.0.to_str().unwrap(), "CTP", "--fuel", "lots"]);
    let line = last_error_line(&err);
    assert!(line.contains("--fuel"), "{line}");
}

#[test]
fn bad_inject_plan_fails_with_context() {
    let prog = write_prog();
    let err = run_err(&["run", prog.0.to_str().unwrap(), "CTP", "--inject", "gremlins"]);
    last_error_line(&err);
}

#[test]
fn run_and_seq_apply_with_budgets() {
    let prog = write_prog();
    let path = prog.0.to_str().unwrap();
    let out = run_ok(&["run", path, "CTP", "--timeout-ms", "60000", "--max-growth", "8"]);
    assert!(out.contains("application(s)"), "{out}");
    let out = run_ok(&["seq", path, "CTP,PAR", "--validate"]);
    assert!(out.contains("pardo i = 1, 50"), "{out}");
}

#[test]
fn trace_streams_jsonl_and_metrics_prints_table() {
    let prog = write_prog();
    let path = prog.0.to_str().unwrap();
    let trace = tempfile_path::write("");
    let out = run_ok(&[
        "run",
        path,
        "CTP",
        "--trace",
        trace.0.to_str().unwrap(),
        "--metrics",
    ]);
    assert!(out.contains("driver.applications"), "{out}");
    let text = std::fs::read_to_string(&trace.0).unwrap();
    assert!(!text.is_empty(), "trace file must not be empty");
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
    }
    for needle in [
        "\"name\":\"driver.attempt\"",
        "\"name\":\"search.match\"",
        "\"name\":\"dep.update\"",
        "\"name\":\"driver.applications\"",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}

#[test]
fn trace_without_path_fails_with_context() {
    let prog = write_prog();
    let err = run_err(&["run", prog.0.to_str().unwrap(), "CTP", "--trace"]);
    assert!(last_error_line(&err).contains("--trace"), "{err}");
}

#[test]
fn validate_trace_includes_guard_events() {
    let prog = write_prog();
    let trace = tempfile_path::write("");
    let stderr = run_err(&[
        "run",
        prog.0.to_str().unwrap(),
        "CTP",
        "--validate",
        "--inject",
        "corrupt",
        "--trace",
        trace.0.to_str().unwrap(),
    ]);
    assert!(stderr.contains("[structural]"), "{stderr}");
    let text = std::fs::read_to_string(&trace.0).unwrap();
    for needle in [
        "\"name\":\"guard.apply\"",
        "\"name\":\"guard.validate\"",
        "\"name\":\"guard.rollback\"",
        "\"name\":\"guard.quarantine\"",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}

const BROKEN_CTP_SPEC: &str = "\
OPTIMIZATION CTP
TYPE
  Stmt: Si, Sj;
PRECOND
  Code_Pattern
    any Si: Si.opc == assign AND type(Si.opr_2) == const;
  Depend
    any (Sj, pos): flow_dep(Si, Sj, (=))
                   AND operand(Sj, pos) == Si.opr_1;
ACTION
  modify(operand(Sj, pos), Si.opr_2);
END
";

const TWO_DEFS_PROG: &str = "\
program t
  integer c, x, y
  read c
  x = 3
  if (c > 0) then
    x = 4
  end if
  y = x
  write y
end
";

#[test]
fn validate_quarantines_a_wrong_spec_end_to_end() {
    let prog = tempfile_path::write(TWO_DEFS_PROG);
    let spec = tempfile_path::write(BROKEN_CTP_SPEC);
    // Without validation the wrong spec silently miscompiles (exit 0).
    let out = run_ok(&[
        "run",
        prog.0.to_str().unwrap(),
        "CTP",
        "--spec",
        spec.0.to_str().unwrap(),
    ]);
    assert!(out.contains("application(s)"), "{out}");
    // With --validate it is caught, rolled back, quarantined, nonzero.
    let stderr = run_err(&[
        "seq",
        prog.0.to_str().unwrap(),
        "CTP,DCE,CTP",
        "--validate",
        "--spec",
        spec.0.to_str().unwrap(),
    ]);
    assert!(stderr.contains("[translation]"), "{stderr}");
    assert!(stderr.contains("rolled back"), "{stderr}");
    assert!(stderr.contains("quarantined"), "{stderr}");
    // The third entry (CTP again) was skipped, not re-run.
    assert!(stderr.contains("skipped CTP"), "{stderr}");
    last_error_line(&stderr);
}

#[test]
fn validate_contains_injected_panic() {
    let prog = write_prog();
    let stderr = run_err(&[
        "run",
        prog.0.to_str().unwrap(),
        "CTP",
        "--validate",
        "--inject",
        "panic",
    ]);
    assert!(stderr.contains("[internal]"), "{stderr}");
    assert!(stderr.contains("rolled back"), "{stderr}");
    last_error_line(&stderr);
}

#[test]
fn deps_dot_output_is_wellformed() {
    let prog = write_prog();
    let out = run_ok(&["deps", prog.0.to_str().unwrap(), "--dot"]);
    assert!(out.starts_with("digraph deps {"), "{out}");
    assert!(out.trim_end().ends_with('}'), "{out}");
    assert!(out.contains("style=solid"), "{out}");
}

#[test]
fn apply_accepts_trace_and_metrics() {
    let prog = write_prog();
    let trace = tempfile_path::write("");
    let out = run_ok(&[
        "apply",
        prog.0.to_str().unwrap(),
        "CTP,PAR",
        "--trace",
        trace.0.to_str().unwrap(),
        "--metrics",
    ]);
    assert!(out.contains("driver.applications"), "{out}");
    let text = std::fs::read_to_string(&trace.0).unwrap();
    assert!(text.contains("\"name\":\"driver.attempt\""), "{text}");
    assert!(text.contains("\"name\":\"search.funnel\""), "{text}");
}

#[test]
fn explain_names_the_blocking_clause_per_candidate() {
    let prog = write_prog();
    let out = run_ok(&["explain", prog.0.to_str().unwrap(), "--opt", "CTP"]);
    assert!(out.contains("anchor candidate(s)"), "{out}");
    assert!(out.contains("FIRES"), "{out}");
    assert!(out.contains("not admitted"), "{out}");
    // Restricting to one statement narrows the report to it.
    let one = run_ok(&[
        "explain",
        prog.0.to_str().unwrap(),
        "--opt",
        "CTP",
        "--stmt",
        "0",
    ]);
    assert!(one.contains("1 anchor candidate(s)"), "{one}");
}

#[test]
fn explain_requires_a_known_optimizer() {
    let prog = write_prog();
    let err = run_err(&["explain", prog.0.to_str().unwrap(), "--opt", "NOPE"]);
    assert!(last_error_line(&err).contains("NOPE"), "{err}");
}

/// Records a real trace, reports it, and gates the report against a
/// baseline whose match-phase time is half the measured one — an
/// injected ≥20% regression that must exit nonzero — while the
/// untampered baseline passes.
#[test]
fn report_baseline_gates_an_injected_match_regression() {
    let prog = write_prog();
    let trace = tempfile_path::write("");
    run_ok(&[
        "seq",
        prog.0.to_str().unwrap(),
        "CTP,DCE,PAR",
        "--validate",
        "--trace",
        trace.0.to_str().unwrap(),
    ]);
    let json = run_ok(&["report", trace.0.to_str().unwrap(), "--format", "json"]);
    assert!(json.contains("\"metrics\""), "{json}");

    // Self-comparison passes at any threshold.
    let clean = tempfile_path::write(&json);
    run_ok(&[
        "report",
        trace.0.to_str().unwrap(),
        "--baseline",
        clean.0.to_str().unwrap(),
        "--threshold-pct",
        "5",
    ]);

    // Halve the baseline's match_ns: the current run now reads as a
    // +100% match-phase regression and the gate must fail.
    let start = json.find("\"match_ns\":").expect("match_ns in report") + "\"match_ns\":".len();
    let end = start + json[start..].find(|c: char| !c.is_ascii_digit()).unwrap();
    let measured: u64 = json[start..end].parse().unwrap();
    assert!(measured > 0, "the traced run must spend time matching");
    let tampered = format!("{}{}{}", &json[..start], measured / 2, &json[end..]);
    let slow = tempfile_path::write(&tampered);
    let err = run_err(&[
        "report",
        trace.0.to_str().unwrap(),
        "--baseline",
        slow.0.to_str().unwrap(),
        "--threshold-pct",
        "20",
    ]);
    assert!(err.contains("match_ns"), "{err}");
    assert!(last_error_line(&err).contains("regressed"), "{err}");
}

#[test]
fn report_rejects_a_malformed_trace_with_context() {
    let junk = tempfile_path::write("this is not jsonl\n");
    let err = run_err(&["report", junk.0.to_str().unwrap()]);
    assert!(last_error_line(&err).contains("line 1"), "{err}");
}

#[test]
fn trace_sample_keeps_counters_while_dropping_spans() {
    let prog = write_prog();
    let full = tempfile_path::write("");
    let sampled = tempfile_path::write("");
    run_ok(&[
        "seq",
        prog.0.to_str().unwrap(),
        "CTP,PAR",
        "--trace",
        full.0.to_str().unwrap(),
    ]);
    run_ok(&[
        "seq",
        prog.0.to_str().unwrap(),
        "CTP,PAR",
        "--trace",
        sampled.0.to_str().unwrap(),
        "--trace-sample",
        "1000000",
    ]);
    let count = |path: &std::path::Path, needle: &str| {
        std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .filter(|l| l.contains(needle))
            .count()
    };
    // Counters (exact by contract) survive sampling untouched...
    assert_eq!(
        count(&full.0, "\"name\":\"funnel.CTP.applied\""),
        count(&sampled.0, "\"name\":\"funnel.CTP.applied\""),
    );
    // ...while attempt spans are decimated.
    assert!(
        count(&sampled.0, "\"name\":\"driver.attempt\"")
            < count(&full.0, "\"name\":\"driver.attempt\""),
        "sampling must drop attempt spans"
    );
}
