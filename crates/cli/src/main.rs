//! `genesis-opt` — the optimizer GENesis constructs (the paper's "OPT"
//! box in Figure 3): reads a MiniFor source program, converts it to the
//! intermediate representation, computes dependences, and applies
//! generated optimizers — in batch or through the §3 interactive
//! interface (select optimizations, select application points, override
//! dependence restrictions, control dependence recomputation).

use genesis::{emit, ApplyMode, FaultPlan, Session, SessionOptions};
use genesis_guard::{GuardConfig, GuardOutcome, GuardedSession};
use gospel_dep::DepGraph;
use gospel_ir::{DisplayProgram, Program, StmtId};
use gospel_trace::Recorder;
use std::io::BufRead;
use std::process::ExitCode;
use std::sync::Arc;

mod repl;

const USAGE: &str = "\
genesis-opt — an optimizer generated from GOSpeL specifications

USAGE:
    genesis-opt specs                              list the catalog optimizations
    genesis-opt show <prog.mf>                     compile and print the IR
    genesis-opt deps <prog.mf> [--dot]             print the dependence graph
    genesis-opt points <prog.mf> <OPT>             list application points
    genesis-opt apply <prog.mf> <OPT>[,<OPT>…]     apply optimizers in order
        [--first] [--at sN] [--force] [--no-recompute] [--source] [--spec FILE]…
    genesis-opt run <prog.mf> <OPT>                apply one optimizer, guarded
    genesis-opt seq <prog.mf> <OPT>[,<OPT>…]       apply a sequence, guarded
        run/seq options: [--validate] [--timeout-ms N] [--fuel N]
        [--max-growth K] [--matcher fused|indexed|scan]
        [--inject KIND[@OPT][:N]]
        [--trace FILE] [--metrics] plus the apply options
    genesis-opt batch <prog.mf>… [--seq <OPT>,<OPT>…] [--threads N]
        apply a sequence to many programs in parallel (one session per
        program, results in input order); self-healing: worker panics are
        contained per file and transient failures retried
        [--keep-going] [--retries N] [--file-timeout-ms N] [--report FILE]
        also accepts [--source] [--inject PLAN] [--trace FILE] [--metrics]
        plus the session options above
    genesis-opt explain <prog.mf> --opt <OPT> [--stmt sN]
        walk every anchor candidate through the fused automaton, the
        anchor format and the Depend section, and name the first failing
        discriminator (edge, conjunct or clause) per candidate
    genesis-opt report <trace.jsonl>… [--format text|json]
        [--baseline report.json] [--threshold-pct P]
        aggregate one or more --trace files into a cross-run report:
        span-tree wall-clock attribution, per-optimizer match funnels,
        latency quantiles and incident counts; with --baseline, exit
        nonzero when a shared metric drifts past the threshold
        (default 10%; *_ns keys only regress upward)
    genesis-opt emit <OPT> [--lang c|rust]         print the generated source
    genesis-opt interactive <prog.mf> [--spec FILE]…   the §3 interface

Catalog: CPP CTP DCE ICM INX CRC BMP PAR LUR FUS CFO.
--spec FILE adds a user-written GOSpeL specification to the session.
--validate checks every application by structural validation and by
executing the program before/after on seeded inputs; a divergent
optimizer is rolled back and quarantined, and the exit code is nonzero.
--inject arms a scripted fault ([~]KIND[@OPT][:N] with KIND one of
analysis|action|corrupt|panic|panic-action|timeout|fuel|corrupt-deps;
a leading ~ makes it transient, firing at most once) to exercise the
recovery paths. --no-degrade turns off the driver's degradation ladder
(stale index → scan → full re-analysis) and restores hard failures.
--matcher picks the candidate searcher: `fused` (default) dispatches the
whole catalog through one shared anchor automaton, `indexed` probes one
per-optimizer statement index, `scan` walks every statement
(`GENESIS_MATCHER` sets the default).
--keep-going drives the remaining batch files past a failure; --retries
and --file-timeout-ms bound each file's attempts; --report FILE writes
the structured per-file batch report as JSON.
--trace FILE streams one JSON object per structured event (attempt
spans, match outcomes, dependence-update counters, guard events) to
FILE; --metrics prints an end-of-run counter/latency summary table.
--trace-sample N records the full attempt span (and its latency
observations, weighted by N) for only one in N driver attempts; funnel
and outcome counters stay exact. apply also accepts --trace/--metrics.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    match cmd.as_str() {
        "specs" => {
            for (name, src) in gospel_opts::specs::ALL {
                let opt = gospel_opts::compile_spec(src).map_err(|e| e.to_string())?;
                println!(
                    "{name:<5} {:<12} {} pattern clause(s), {} dependence clause(s), {} action(s)",
                    format!("[{:?}]", opt.mode).to_lowercase(),
                    opt.patterns.len(),
                    opt.depends.len(),
                    opt.actions.len()
                );
            }
            Ok(())
        }
        "show" => {
            let prog = load_program(args.get(1))?;
            print!("{}", DisplayProgram(&prog));
            Ok(())
        }
        "deps" => {
            let prog = load_program(args.get(1))?;
            let deps = DepGraph::analyze(&prog).map_err(|e| e.to_string())?;
            if flag(args, "--dot") {
                print!("{}", dot_graph(&prog, &deps));
                return Ok(());
            }
            for e in deps.edges() {
                let dirs: String = e.dirvec.iter().map(|d| d.symbol()).collect();
                println!(
                    "{:<10} {} -> {}  var {}  dir ({})",
                    e.kind.gospel_name(),
                    e.src,
                    e.dst,
                    prog.syms().name(e.var),
                    dirs
                );
            }
            println!("{} edges", deps.len());
            Ok(())
        }
        "points" => {
            let prog = load_program(args.get(1))?;
            let name = args.get(2).ok_or("missing optimization name")?;
            let session = build_session(prog, args)?;
            let ms = session.matches(name).map_err(|e| e.to_string())?;
            for (i, b) in ms.bindings.iter().enumerate() {
                let pairs: Vec<String> =
                    b.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
                println!("point {}: {}", i + 1, pairs.join(", "));
            }
            println!("{} application point(s); search cost {}", ms.bindings.len(), ms.cost);
            Ok(())
        }
        "apply" => {
            let prog = load_program(args.get(1))?;
            let list = args.get(2).ok_or("missing optimization list")?;
            let mut session =
                build_session_with_options(prog, args, parse_session_options(args)?)?;
            let mode = parse_mode(args)?;
            let (recorder, trace_path, metrics) = parse_trace(args)?;
            session.set_recorder(recorder.clone());
            for name in list.split(',') {
                let report = match session.apply(name, mode) {
                    Ok(r) => r,
                    Err(e) => {
                        finish_trace(recorder.as_deref(), trace_path.as_deref(), metrics)?;
                        return Err(e.to_string());
                    }
                };
                println!(
                    "{name}: {} application(s), cost {}",
                    report.applications, report.cost
                );
            }
            print_program(session.program(), args);
            finish_trace(recorder.as_deref(), trace_path.as_deref(), metrics)
        }
        "run" | "seq" => {
            let prog = load_program(args.get(1))?;
            let list = args.get(2).ok_or("missing optimization list")?;
            let names: Vec<&str> = list.split(',').collect();
            if cmd == "run" && names.len() != 1 {
                return Err("run takes exactly one optimization (use seq for lists)".into());
            }
            run_optimizers(prog, &names, args)
        }
        "batch" => run_batch_command(args),
        "explain" => run_explain_command(args),
        "report" => run_report_command(args),
        "emit" => {
            let name = args.get(1).ok_or("missing optimization name")?;
            let opt = find_opt(name, args)?;
            match option(args, "--lang").as_deref().unwrap_or("c") {
                "c" => {
                    println!("{}", emit::emit_c(&opt));
                    println!("{}", emit::emit_c_interface(&opt));
                }
                "rust" => println!("{}", emit::emit_rust(&opt)),
                other => return Err(format!("unknown language `{other}`")),
            }
            Ok(())
        }
        "interactive" => {
            let prog = load_program(args.get(1))?;
            let session = build_session(prog, args)?;
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            repl::run(session, stdin.lock(), stdout.lock()).map_err(|e| e.to_string())
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`; try --help")),
    }
}

fn load_program(path: Option<&String>) -> Result<Program, String> {
    let path = path.ok_or("missing program file")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    gospel_frontend::compile(&src).map_err(|e| format!("{path}: {e}"))
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn option(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn options(args: &[String], name: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
            }
        }
    }
    out
}

fn parse_mode(args: &[String]) -> Result<ApplyMode, String> {
    let at = option(args, "--at");
    let force = flag(args, "--force");
    match (at, force) {
        (Some(p), false) => Ok(ApplyMode::AtPoint(parse_stmt(&p)?)),
        (Some(p), true) => Ok(ApplyMode::AtPointUnchecked(parse_stmt(&p)?)),
        (None, true) => Err("--force requires --at".into()),
        (None, false) if flag(args, "--first") => Ok(ApplyMode::FirstPoint),
        (None, false) => Ok(ApplyMode::AllPoints),
    }
}

fn parse_stmt(text: &str) -> Result<StmtId, String> {
    // Statement ids print as `sN`; accept with or without the prefix.
    let digits = text.trim_start_matches('s');
    let n: u32 = digits
        .parse()
        .map_err(|_| format!("`{text}` is not a statement id (expected sN)"))?;
    Ok(StmtId::from_raw(n))
}

/// Parses `--name N` into a number, with the flag name in the error.
fn num_option<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    match option(args, name) {
        None => {
            if flag(args, name) {
                Err(format!("{name} requires a value"))
            } else {
                Ok(None)
            }
        }
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("{name}: `{v}` is not a valid number")),
    }
}

fn parse_session_options(args: &[String]) -> Result<SessionOptions, String> {
    let matcher = match option(args, "--matcher") {
        None if flag(args, "--matcher") => {
            return Err("--matcher requires a value (fused|indexed|scan)".into())
        }
        None => genesis::matcher_default(),
        Some(v) => genesis::MatcherKind::parse(&v)
            .ok_or_else(|| format!("--matcher: `{v}` is not one of fused|indexed|scan"))?,
    };
    Ok(SessionOptions {
        recompute_deps: !flag(args, "--no-recompute"),
        timeout_ms: num_option(args, "--timeout-ms")?,
        fuel: num_option(args, "--fuel")?,
        max_growth: num_option(args, "--max-growth")?,
        degraded_recovery: !flag(args, "--no-degrade"),
        matcher,
        trace_sample: num_option(args, "--trace-sample")?.unwrap_or(1),
        ..SessionOptions::default()
    })
}

fn parse_inject(args: &[String]) -> Result<Option<FaultPlan>, String> {
    match option(args, "--inject") {
        None if flag(args, "--inject") => Err("--inject requires a fault plan".into()),
        None => Ok(None),
        Some(text) => FaultPlan::parse(&text).map(Some),
    }
}

/// The `run`/`seq` commands: apply optimizers with resource budgets and
/// optional fault injection; with `--validate`, under the full
/// [`GuardedSession`] gate (rollback + quarantine on any rejection).
fn run_optimizers(prog: Program, names: &[&str], args: &[String]) -> Result<(), String> {
    let mode = parse_mode(args)?;
    let fault = parse_inject(args)?;
    let opts = parse_session_options(args)?;
    let (recorder, trace_path, metrics) = parse_trace(args)?;

    if !flag(args, "--validate") {
        let mut session = build_session_with_options(prog, args, opts)?;
        session.set_fault(fault);
        session.set_recorder(recorder.clone());
        for name in names {
            let report = match session.apply(name, mode) {
                Ok(r) => r,
                Err(e) => {
                    finish_trace(recorder.as_deref(), trace_path.as_deref(), metrics)?;
                    return Err(e.to_string());
                }
            };
            println!(
                "{name}: {} application(s), cost {}",
                report.applications, report.cost
            );
        }
        print_program(session.program(), args);
        return finish_trace(recorder.as_deref(), trace_path.as_deref(), metrics);
    }

    let config = GuardConfig {
        timeout_ms: opts.timeout_ms.or(GuardConfig::default().timeout_ms),
        fuel: opts.fuel,
        max_growth: opts.max_growth.or(GuardConfig::default().max_growth),
        // `--validate` is the belt-and-braces mode: also audit the
        // incrementally-maintained dependence graph every application.
        verify_deps: true,
        ..GuardConfig::default()
    };
    let mut guarded = GuardedSession::new(prog, config);
    guarded.set_recorder(recorder.clone());
    for opt in gospel_opts::catalog().map_err(|e| e.to_string())? {
        guarded.register(opt);
    }
    for path in options(args, "--spec") {
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        let opt = gospel_opts::compile_spec(&src).map_err(|e| format!("{path}: {e}"))?;
        println!("registered user optimization {}", opt.name);
        guarded.register(opt);
    }
    guarded.set_fault(fault);

    // The guard contains panics from generated optimizers, but the
    // default hook would still print a backtrace for each contained one;
    // keep stderr to the structured reports while the guard runs.
    // (Safe to swap globally: this binary is single-threaded.)
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut rejections = 0usize;
    let mut failure = None;
    for name in names {
        match guarded.apply(name, mode) {
            Ok(GuardOutcome::Applied(report)) => println!(
                "{name}: {} application(s), cost {}",
                report.applications, report.cost
            ),
            Ok(GuardOutcome::Rejected(report)) => {
                rejections += 1;
                eprintln!("validation: {report}");
            }
            Ok(GuardOutcome::Skipped { optimizer, reason }) => {
                eprintln!("skipped {optimizer}: quarantined ({reason})");
            }
            Err(e) => {
                failure = Some(e.to_string());
                break;
            }
        }
    }
    std::panic::set_hook(default_hook);
    if let Some(e) = failure {
        finish_trace(recorder.as_deref(), trace_path.as_deref(), metrics)?;
        return Err(e);
    }
    print_program(guarded.program(), args);
    finish_trace(recorder.as_deref(), trace_path.as_deref(), metrics)?;
    if rejections > 0 {
        Err(format!(
            "{rejections} optimization(s) rejected and rolled back (program output above is the validated state)"
        ))
    } else {
        Ok(())
    }
}

/// The `batch` command: one session per program file, fanned out over a
/// self-healing worker pool (panic containment, transient-error retries,
/// per-file deadlines), results printed in input order. By default the
/// first ultimate failure aborts the remaining files; `--keep-going`
/// drives every file regardless. The exit code is nonzero only when at
/// least one file ultimately failed.
fn run_batch_command(args: &[String]) -> Result<(), String> {
    const VALUE_OPTS: [&str; 13] = [
        "--seq",
        "--threads",
        "--trace",
        "--trace-sample",
        "--timeout-ms",
        "--fuel",
        "--max-growth",
        "--matcher",
        "--spec",
        "--retries",
        "--file-timeout-ms",
        "--report",
        "--inject",
    ];
    let mut files: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        let a = &args[i];
        if VALUE_OPTS.contains(&a.as_str()) {
            i += 2;
        } else if a.starts_with("--") {
            i += 1;
        } else {
            files.push(a.clone());
            i += 1;
        }
    }
    if files.is_empty() {
        return Err("batch requires at least one program file".into());
    }
    let threads: usize = num_option(args, "--threads")?.unwrap_or(1);
    let seq_text = option(args, "--seq");
    let sequence: Vec<&str> = seq_text
        .as_deref()
        .map(|s| s.split(',').collect())
        .unwrap_or_default();
    let opts = parse_session_options(args)?;
    let (recorder, trace_path, metrics) = parse_trace(args)?;

    let mut optimizers: Vec<genesis::CompiledOptimizer> = Vec::new();
    for opt in gospel_opts::catalog().map_err(|e| e.to_string())? {
        optimizers.push(opt);
    }
    for path in options(args, "--spec") {
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        let opt = gospel_opts::compile_spec(&src).map_err(|e| format!("{path}: {e}"))?;
        println!("registered user optimization {}", opt.name);
        optimizers.push(opt);
    }

    let items = files
        .iter()
        .map(|f| {
            Ok(genesis::BatchItem {
                label: f.clone(),
                prog: load_program(Some(f))?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;

    let policy = genesis::BatchPolicy {
        keep_going: flag(args, "--keep-going"),
        retries: num_option(args, "--retries")?.unwrap_or(1),
        file_timeout_ms: num_option(args, "--file-timeout-ms")?,
        fault: parse_inject(args)?,
    };

    // Contained worker panics are reported per file; the default hook's
    // backtrace spew would bury the batch report.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcomes = genesis::run_batch(
        items,
        &optimizers,
        &sequence,
        opts,
        &policy,
        threads,
        recorder.as_ref(),
    );
    std::panic::set_hook(prev_hook);

    let total = outcomes.len();
    let mut failures = 0usize;
    for o in &outcomes {
        match &o.status {
            genesis::BatchStatus::Done(ok) => {
                let retry_note = if o.attempts > 1 {
                    format!(" ({} attempts)", o.attempts)
                } else {
                    String::new()
                };
                println!(
                    "== {}: {} application(s), cost {}{retry_note}",
                    o.label, ok.applications, ok.cost
                );
                if flag(args, "--source") {
                    print!("{}", gospel_frontend::unparse(&ok.prog));
                } else {
                    print!("{}", DisplayProgram(&ok.prog));
                }
            }
            genesis::BatchStatus::Failed(e) => {
                failures += 1;
                println!(
                    "== {}: error after {} attempt(s): {e}",
                    o.label, o.attempts
                );
            }
            genesis::BatchStatus::Skipped => {
                println!("== {}: skipped (earlier failure, no --keep-going)", o.label);
            }
        }
    }
    if let Some(path) = option(args, "--report") {
        std::fs::write(&path, batch_report_json(&outcomes))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    finish_trace(recorder.as_deref(), trace_path.as_deref(), metrics)?;
    if failures > 0 {
        Err(format!("{failures} of {total} program(s) failed"))
    } else {
        Ok(())
    }
}

/// The `explain` command: replay one optimizer's match funnel over every
/// anchor candidate of a program and narrate where each candidate died —
/// the automaton edge, the format conjunct, or the dependence clause.
fn run_explain_command(args: &[String]) -> Result<(), String> {
    let prog = load_program(args.get(1))?;
    let name = option(args, "--opt").ok_or("explain requires --opt NAME")?;
    let deps = DepGraph::analyze(&prog).map_err(|e| e.to_string())?;
    // Assemble the same catalog a session would register (plus any
    // --spec additions) so the fused automaton's trie — and therefore
    // the replayed admission path — matches a real run's.
    let mut optimizers: Vec<genesis::CompiledOptimizer> =
        gospel_opts::catalog().map_err(|e| e.to_string())?;
    for path in options(args, "--spec") {
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        let opt = gospel_opts::compile_spec(&src).map_err(|e| format!("{path}: {e}"))?;
        optimizers.push(opt);
    }
    let opt = optimizers
        .iter()
        .find(|o| o.name.eq_ignore_ascii_case(&name))
        .ok_or_else(|| format!("`{name}` is not in the catalog (try `specs`)"))?;
    let auto = genesis::FusedAutomaton::build(&optimizers, &prog);
    let stmt = match option(args, "--stmt") {
        None if flag(args, "--stmt") => return Err("--stmt requires a statement id".into()),
        None => None,
        Some(s) => Some(parse_stmt(&s)?),
    };
    let report =
        genesis::explain(&prog, &deps, opt, &auto, stmt).map_err(|e| e.to_string())?;
    print!("{}", report.to_text());
    Ok(())
}

/// The `report` command: aggregate one or more `--trace` JSONL files
/// into a cross-run analytics report, and optionally gate it against a
/// baseline report.
fn run_report_command(args: &[String]) -> Result<(), String> {
    const VALUE_OPTS: [&str; 3] = ["--format", "--baseline", "--threshold-pct"];
    let mut files: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        let a = &args[i];
        if VALUE_OPTS.contains(&a.as_str()) {
            i += 2;
        } else if a.starts_with("--") {
            i += 1;
        } else {
            files.push(a.clone());
            i += 1;
        }
    }
    if files.is_empty() {
        return Err("report requires at least one trace file".into());
    }
    let mut traces = Vec::with_capacity(files.len());
    for f in &files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
        traces.push(gospel_trace::report::parse_trace(&text).map_err(|e| format!("{f}: {e}"))?);
    }
    let report = gospel_trace::report::Report::build(&traces);
    match option(args, "--format").as_deref().unwrap_or("text") {
        "text" => print!("{}", report.to_text()),
        "json" => print!("{}", report.to_json()),
        other => return Err(format!("--format: `{other}` is not one of text|json")),
    }
    if let Some(path) = option(args, "--baseline") {
        let baseline = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        let threshold: f64 = num_option(args, "--threshold-pct")?.unwrap_or(10.0);
        let regressions = gospel_trace::report::compare(&report, &baseline, threshold)
            .map_err(|e| format!("{path}: {e}"))?;
        if !regressions.is_empty() {
            for r in &regressions {
                eprintln!("regression: {r}");
            }
            return Err(format!(
                "{} metric(s) regressed past {threshold}% against {path}",
                regressions.len()
            ));
        }
        eprintln!("baseline check passed ({path}, threshold {threshold}%)");
    }
    Ok(())
}

/// The structured per-file batch report (`--report FILE`): one entry per
/// input slot with status, attempt count and elapsed time.
fn batch_report_json(outcomes: &[genesis::BatchOutcome]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"files\": [\n");
    let (mut done, mut failed, mut skipped) = (0usize, 0usize, 0usize);
    for (i, o) in outcomes.iter().enumerate() {
        out.push_str("    {\"file\": ");
        gospel_trace::write_json_string(&o.label, &mut out);
        let _ = write!(out, ", \"attempts\": {}, \"elapsed_ms\": {}", o.attempts, o.elapsed_ms);
        match &o.status {
            genesis::BatchStatus::Done(ok) => {
                done += 1;
                let _ = write!(
                    out,
                    ", \"status\": \"done\", \"applications\": {}, \"cost\": {}",
                    ok.applications,
                    ok.cost.total()
                );
            }
            genesis::BatchStatus::Failed(e) => {
                failed += 1;
                out.push_str(", \"status\": \"failed\", \"error\": ");
                gospel_trace::write_json_string(&e.to_string(), &mut out);
            }
            genesis::BatchStatus::Skipped => {
                skipped += 1;
                out.push_str(", \"status\": \"skipped\"");
            }
        }
        out.push('}');
        if i + 1 < outcomes.len() {
            out.push(',');
        }
        out.push('\n');
    }
    let _ = write!(
        out,
        "  ],\n  \"total\": {}, \"done\": {done}, \"failed\": {failed}, \"skipped\": {skipped}\n}}\n",
        outcomes.len()
    );
    out
}

/// Parsed `--trace FILE` / `--metrics` options: the recorder (created
/// when either flag is present), the trace path, and the metrics flag.
type TraceOpts = (Option<Arc<Recorder>>, Option<String>, bool);

/// Parses `--trace FILE` / `--metrics`; a recorder is created when either
/// is present.
fn parse_trace(args: &[String]) -> Result<TraceOpts, String> {
    let trace_path = match option(args, "--trace") {
        None if flag(args, "--trace") => return Err("--trace requires a file path".into()),
        other => other,
    };
    let metrics = flag(args, "--metrics");
    let recorder = (trace_path.is_some() || metrics).then(|| Arc::new(Recorder::new()));
    Ok((recorder, trace_path, metrics))
}

/// Flushes the recorder at end of run: the JSONL event stream to the
/// `--trace` file, the `--metrics` summary table to stdout.
fn finish_trace(rec: Option<&Recorder>, path: Option<&str>, metrics: bool) -> Result<(), String> {
    let Some(rec) = rec else { return Ok(()) };
    if let Some(path) = path {
        use std::fmt::Write as _;
        let mut out = String::new();
        for event in rec.drain_events() {
            let _ = writeln!(out, "{}", event.to_jsonl());
        }
        std::fs::write(path, out).map_err(|e| format!("{path}: {e}"))?;
    }
    if metrics {
        print!("{}", rec.metrics_table());
    }
    Ok(())
}

fn print_program(prog: &Program, args: &[String]) {
    if flag(args, "--source") {
        print!("{}", gospel_frontend::unparse(prog));
    } else {
        print!("{}", DisplayProgram(prog));
    }
}

fn build_session(prog: Program, args: &[String]) -> Result<Session, String> {
    build_session_with_options(prog, args, SessionOptions::default())
}

fn build_session_with_options(
    prog: Program,
    args: &[String],
    opts: SessionOptions,
) -> Result<Session, String> {
    let mut session = Session::with_options(prog, opts);
    for opt in gospel_opts::catalog().map_err(|e| e.to_string())? {
        session.register(opt);
    }
    for path in options(args, "--spec") {
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        let opt = gospel_opts::compile_spec(&src).map_err(|e| format!("{path}: {e}"))?;
        println!("registered user optimization {}", opt.name);
        session.register(opt);
    }
    Ok(session)
}

fn find_opt(name: &str, args: &[String]) -> Result<genesis::CompiledOptimizer, String> {
    for path in options(args, "--spec") {
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        let opt = gospel_opts::compile_spec(&src).map_err(|e| format!("{path}: {e}"))?;
        if opt.name.eq_ignore_ascii_case(name) {
            return Ok(opt);
        }
    }
    if gospel_opts::specs::ALL
        .iter()
        .any(|(n, _)| n.eq_ignore_ascii_case(name))
    {
        Ok(gospel_opts::by_name(name))
    } else {
        Err(format!("`{name}` is not in the catalog (try `specs`)"))
    }
}

/// Renders the dependence graph in Graphviz dot form (one node per
/// statement, edge styles per dependence kind).
fn dot_graph(prog: &Program, deps: &DepGraph) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("digraph deps {\n  rankdir=TB;\n  node [shape=box, fontname=monospace];\n");
    for id in prog.iter() {
        let mut label = String::new();
        let _ = write!(label, "{id}: {}", prog.quad(id).op);
        let _ = writeln!(s, "  \"{id}\" [label=\"{label}\"];");
    }
    for e in deps.edges() {
        let style = match e.kind {
            gospel_dep::DepKind::Flow => "solid",
            gospel_dep::DepKind::Anti => "dashed",
            gospel_dep::DepKind::Output => "dotted",
            gospel_dep::DepKind::Control => "bold",
        };
        let dirs: String = e.dirvec.iter().map(|d| d.symbol()).collect();
        let _ = writeln!(
            s,
            "  \"{}\" -> \"{}\" [style={style}, label=\"{} ({dirs})\"];",
            e.src,
            e.dst,
            prog.syms().name(e.var)
        );
    }
    s.push_str("}\n");
    s
}

/// Used by the interactive REPL too.
pub(crate) fn prompt(mut out: impl std::io::Write) -> std::io::Result<()> {
    write!(out, "opt> ")?;
    out.flush()
}

/// Reads one line; `None` on EOF.
pub(crate) fn read_line(mut input: impl BufRead) -> Option<String> {
    let mut line = String::new();
    match input.read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(line.trim().to_string()),
        Err(_) => None,
    }
}
