//! The §3 interactive interface: "the user may execute any number of
//! optimizations in any order … perform an optimization at one
//! application point (possibly overriding dependence constraints) or at
//! all possible points … decide if the data dependence should be
//! re-calculated between execution of each optimization."

use genesis::{ApplyMode, Session};
use gospel_ir::{DisplayProgram, StmtId};
use std::io::{BufRead, Write};

const HELP: &str = "\
commands:
  list                      registered optimizations
  show                      current program (IR listing)
  source                    current program as MiniFor source
  points <OPT>              application points of <OPT>
  apply <OPT>               apply at all points
  apply <OPT> at <sN>       apply at one point
  force <OPT> at <sN>       apply at one point, overriding dependences
  log                       what has been applied, with costs
  help                      this text
  quit                      end the session
";

/// Runs the interactive loop over the given reader/writer (unit-testable).
pub fn run(
    mut session: Session,
    mut input: impl BufRead,
    mut out: impl Write,
) -> std::io::Result<()> {
    writeln!(out, "GENesis interactive optimizer — `help` for commands")?;
    loop {
        crate::prompt(&mut out)?;
        let Some(line) = crate::read_line(&mut input) else {
            break;
        };
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            [] => {}
            ["quit"] | ["exit"] | ["q"] => break,
            ["help"] => write!(out, "{HELP}")?,
            ["list"] => {
                for n in session.optimizer_names() {
                    writeln!(out, "  {n}")?;
                }
            }
            ["show"] => write!(out, "{}", DisplayProgram(session.program()))?,
            ["source"] => write!(out, "{}", gospel_frontend::unparse(session.program()))?,
            ["log"] => {
                for ev in session.log() {
                    writeln!(
                        out,
                        "  {} ({:?}): {} application(s), cost {}",
                        ev.optimizer, ev.mode, ev.report.applications, ev.report.cost
                    )?;
                }
                writeln!(out, "  total cost: {}", session.total_cost())?;
            }
            ["points", name] => match session.matches(name) {
                Ok(ms) => {
                    for (i, b) in ms.bindings.iter().enumerate() {
                        let pairs: Vec<String> =
                            b.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
                        writeln!(out, "  point {}: {}", i + 1, pairs.join(", "))?;
                    }
                    writeln!(out, "  {} point(s)", ms.bindings.len())?;
                }
                Err(e) => writeln!(out, "  error: {e}")?,
            },
            ["apply", name] => report(&mut out, session.apply(name, ApplyMode::AllPoints))?,
            ["apply", name, "at", point] => {
                let mode = match parse_point(point) {
                    Ok(p) => ApplyMode::AtPoint(p),
                    Err(e) => {
                        writeln!(out, "  error: {e}")?;
                        continue;
                    }
                };
                report(&mut out, session.apply(name, mode))?;
            }
            ["force", name, "at", point] => {
                let mode = match parse_point(point) {
                    Ok(p) => ApplyMode::AtPointUnchecked(p),
                    Err(e) => {
                        writeln!(out, "  error: {e}")?;
                        continue;
                    }
                };
                report(&mut out, session.apply(name, mode))?;
            }
            other => writeln!(out, "  unknown command {:?}; try `help`", other.join(" "))?,
        }
    }
    writeln!(out, "session ended; final program:")?;
    write!(out, "{}", DisplayProgram(session.program()))?;
    Ok(())
}

fn parse_point(text: &str) -> Result<StmtId, String> {
    text.trim_start_matches('s')
        .parse::<u32>()
        .map(StmtId::from_raw)
        .map_err(|_| format!("`{text}` is not a statement id (expected sN)"))
}

fn report(
    out: &mut impl Write,
    r: Result<&genesis::ApplyReport, genesis::RunError>,
) -> std::io::Result<()> {
    match r {
        Ok(rep) => writeln!(
            out,
            "  {} application(s), cost {}",
            rep.applications, rep.cost
        ),
        Err(e) => writeln!(out, "  error: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesis::SessionOptions;

    fn scripted(prog_src: &str, script: &str) -> String {
        let prog = gospel_frontend::compile(prog_src).unwrap();
        let mut session = Session::with_options(prog, SessionOptions::default());
        for opt in gospel_opts::catalog().unwrap() {
            session.register(opt);
        }
        let mut out = Vec::new();
        run(session, script.as_bytes(), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    const PROG: &str = "program p\ninteger x, y\nx = 3\ny = x\nwrite y\nend";

    #[test]
    fn list_apply_and_quit() {
        let out = scripted(PROG, "list\napply CTP\nlog\nquit\n");
        assert!(out.contains("CTP"), "{out}");
        assert!(out.contains("2 application(s)"), "{out}");
        assert!(out.contains("total cost"), "{out}");
        assert!(out.contains("y := 3"), "{out}");
    }

    #[test]
    fn points_and_apply_at() {
        let out = scripted(PROG, "points CTP\napply CTP at s0\nshow\nquit\n");
        assert!(out.contains("point 1:"), "{out}");
        assert!(out.contains("1 application(s)"), "{out}");
    }

    #[test]
    fn force_overrides_dependences() {
        let recurrence = "program p\ninteger i\nreal a(100)\ndo i = 2, 100\na(i) = a(i-1)\nend do\nwrite a(100)\nend";
        let out = scripted(recurrence, "apply PAR at s0\nforce PAR at s0\nshow\nquit\n");
        assert!(out.contains("0 application(s)"), "{out}");
        assert!(out.contains("1 application(s)"), "{out}");
        assert!(out.contains("pardo"), "{out}");
    }

    #[test]
    fn bad_input_is_reported_not_fatal() {
        let out = scripted(PROG, "points NOPE\napply CTP at xyz\nblah\nquit\n");
        assert!(out.contains("error:"), "{out}");
        assert!(out.contains("unknown command"), "{out}");
    }

    #[test]
    fn eof_ends_session() {
        let out = scripted(PROG, "list\n");
        assert!(out.contains("session ended"), "{out}");
    }
}
