//! Cross-run trace analytics: folds one or more JSONL traces (the
//! `--trace out.jsonl` format) into an aggregated report — span-tree
//! wall-clock attribution by phase, per-optimizer match funnels,
//! interpolated latency quantiles, and degradation/retry/parole
//! incidence — and diffs two reports for regression gating. The CLI
//! `report` subcommand and CI both drive this module, so BENCH files
//! and pull-request gates share one comparison engine.

use crate::json::{self, Json};
use crate::{write_json_string, HistogramSnapshot};
use std::collections::BTreeMap;

/// One trace event decoded from a JSONL line. Unlike [`crate::Event`]
/// this owns every string (field keys in live events are `&'static
/// str`; a parsed trace has no statics to borrow from).
#[derive(Clone, Debug)]
pub struct ParsedEvent {
    /// `span_open` / `span_close` / `event` / `counter`.
    pub kind: String,
    /// Event name.
    pub name: String,
    /// Span id, for span events.
    pub span: Option<u64>,
    /// Running total, for counter events.
    pub value: Option<u64>,
    /// Increment, for counter events.
    pub delta: Option<u64>,
    /// Structured fields.
    pub fields: Vec<(String, Json)>,
}

impl ParsedEvent {
    /// The field named `key`, if present.
    pub fn field(&self, key: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn field_u64(&self, key: &str) -> Option<u64> {
        self.field(key).and_then(Json::as_u64)
    }
}

/// Parses a whole JSONL trace (one event object per non-empty line).
///
/// # Errors
///
/// Returns `line N: <syntax error>` for the first malformed line.
pub fn parse_trace(text: &str) -> Result<Vec<ParsedEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: event has no `type`", i + 1))?
            .to_string();
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: event has no `name`", i + 1))?
            .to_string();
        let fields = match v.get("fields").and_then(Json::members) {
            Some(members) => members.to_vec(),
            None => Vec::new(),
        };
        events.push(ParsedEvent {
            kind,
            name,
            span: v.get("span").and_then(Json::as_u64),
            value: v.get("value").and_then(Json::as_u64),
            delta: v.get("delta").and_then(Json::as_u64),
            fields,
        });
    }
    Ok(events)
}

/// Wall-clock attribution for one span name ("phase").
#[derive(Clone, Debug)]
pub struct PhaseRow {
    /// Span name (e.g. `driver.attempt`).
    pub name: String,
    /// Number of closed spans.
    pub spans: u64,
    /// Sum of elapsed time, children included.
    pub total_ns: u64,
    /// Sum of self time (elapsed minus time in child spans) — the
    /// column that adds up to wall clock across phases.
    pub self_ns: u64,
    /// Per-span elapsed distribution, for interpolated quantiles.
    pub latency: HistogramSnapshot,
}

/// One optimizer's match funnel: phase name → total, in funnel order.
#[derive(Clone, Debug)]
pub struct FunnelRow {
    /// Optimizer name.
    pub optimizer: String,
    /// `(phase, total)` pairs in canonical funnel order.
    pub phases: Vec<(String, u64)>,
}

impl FunnelRow {
    /// The total for one funnel phase (zero when absent).
    pub fn phase(&self, name: &str) -> u64 {
        self.phases
            .iter()
            .find(|(p, _)| p == name)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }
}

/// Canonical order of funnel phases in reports; phases outside this
/// list sort after it, alphabetically.
const FUNNEL_ORDER: [&str; 7] = [
    "classified",
    "admitted",
    "matched",
    "dep_checked",
    "applied",
    "validated",
    "rolled_back",
];

/// `(label, counter prefix)` pairs folded into the incident summary.
const INCIDENTS: [(&str, &str); 7] = [
    ("degraded_searches", "search.degraded"),
    ("transient_retries", "guard.transient_retries"),
    ("parole_returns", "guard.parole"),
    ("quarantines", "guard.quarantines"),
    ("file_retries", "batch.file_retry"),
    ("guard_rollbacks", "guard.rollbacks"),
    ("action_rollbacks", "driver.action_rollbacks"),
];

/// An aggregated view over one or more traces. Build with
/// [`Report::build`], render with [`Report::to_text`] /
/// [`Report::to_json`], diff with [`compare`].
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Number of traces folded in.
    pub traces: usize,
    /// Total events across all traces.
    pub events: u64,
    /// Per-phase wall-clock attribution, largest self time first.
    pub phases: Vec<PhaseRow>,
    /// Per-optimizer match funnels, alphabetical.
    pub funnels: Vec<FunnelRow>,
    /// Every counter total (deltas summed across traces).
    pub counters: BTreeMap<String, u64>,
    /// Degradation/retry/parole incidence, in [`INCIDENTS`] order.
    pub incidents: Vec<(String, u64)>,
    /// Total search time reported by `driver.attempt` closes,
    /// sample-weight corrected.
    pub match_ns: u64,
    /// Pattern-matching share of [`Report::match_ns`].
    pub pattern_ns: u64,
}

impl Report {
    /// Folds parsed traces into one report.
    pub fn build(traces: &[Vec<ParsedEvent>]) -> Report {
        let mut phase_stats: BTreeMap<String, PhaseRow> = BTreeMap::new();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut events: u64 = 0;
        let mut degraded_events: u64 = 0;
        let mut match_ns: u64 = 0;
        let mut pattern_ns: u64 = 0;

        for trace in traces {
            // Open-span stack for self-time attribution. Spans nest
            // LIFO within one trace stream (merged recorders offset
            // ids, so ids are unique).
            let mut stack: Vec<(u64, u64)> = Vec::new(); // (span id, child_ns)
            for ev in trace {
                events += 1;
                match ev.kind.as_str() {
                    "span_open" => {
                        if let Some(id) = ev.span {
                            stack.push((id, 0));
                        }
                    }
                    "span_close" => {
                        let elapsed = ev.field_u64("elapsed_ns").unwrap_or(0);
                        let child_ns = match ev.span.and_then(|id| {
                            stack.iter().rposition(|(open, _)| *open == id)
                        }) {
                            Some(at) => {
                                // Anything above `at` was opened later and
                                // never closed (a truncated trace); drop it.
                                let (_, child_ns) = stack[at];
                                stack.truncate(at);
                                child_ns
                            }
                            None => 0,
                        };
                        if let Some((_, parent_child_ns)) = stack.last_mut() {
                            *parent_child_ns = parent_child_ns.saturating_add(elapsed);
                        }
                        let row = phase_stats.entry(ev.name.clone()).or_insert_with(|| {
                            PhaseRow {
                                name: ev.name.clone(),
                                spans: 0,
                                total_ns: 0,
                                self_ns: 0,
                                latency: HistogramSnapshot::default(),
                            }
                        });
                        row.spans += 1;
                        row.total_ns = row.total_ns.saturating_add(elapsed);
                        row.self_ns = row
                            .self_ns
                            .saturating_add(elapsed.saturating_sub(child_ns));
                        row.latency.record(elapsed, 1);
                        if ev.name == "driver.attempt" {
                            let weight = ev.field_u64("sample").unwrap_or(1).max(1);
                            match_ns = match_ns.saturating_add(
                                ev.field_u64("search_ns").unwrap_or(0).saturating_mul(weight),
                            );
                            pattern_ns = pattern_ns.saturating_add(
                                ev.field_u64("pattern_ns")
                                    .unwrap_or(0)
                                    .saturating_mul(weight),
                            );
                        }
                    }
                    "counter" => {
                        *counters.entry(ev.name.clone()).or_insert(0) +=
                            ev.delta.unwrap_or(0);
                    }
                    _ => {
                        if ev.name == "search.degraded" {
                            degraded_events += 1;
                        }
                    }
                }
            }
        }

        let mut phases: Vec<PhaseRow> = phase_stats.into_values().collect();
        phases.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));

        // funnel.<OPT>.<phase> counters → per-optimizer rows.
        let mut funnel_map: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
        for (name, total) in &counters {
            if let Some(rest) = name.strip_prefix("funnel.") {
                if let Some((opt, phase)) = rest.split_once('.') {
                    funnel_map
                        .entry(opt.to_string())
                        .or_default()
                        .push((phase.to_string(), *total));
                }
            }
        }
        let rank = |p: &str| {
            FUNNEL_ORDER
                .iter()
                .position(|f| *f == p)
                .unwrap_or(FUNNEL_ORDER.len())
        };
        let funnels = funnel_map
            .into_iter()
            .map(|(optimizer, mut phases)| {
                phases.sort_by(|(a, _), (b, _)| rank(a).cmp(&rank(b)).then(a.cmp(b)));
                FunnelRow { optimizer, phases }
            })
            .collect();

        let incidents = INCIDENTS
            .iter()
            .map(|(label, prefix)| {
                let mut total: u64 = counters
                    .iter()
                    .filter(|(n, _)| {
                        n.as_str() == *prefix
                            || n.strip_prefix(prefix)
                                .is_some_and(|rest| rest.starts_with('.'))
                    })
                    .map(|(_, v)| *v)
                    .sum();
                if *label == "degraded_searches" {
                    total = total.max(degraded_events);
                }
                (label.to_string(), total)
            })
            .collect();

        Report {
            traces: traces.len(),
            events,
            phases,
            funnels,
            counters,
            incidents,
            match_ns,
            pattern_ns,
        }
    }

    /// The flat metric map that [`compare`] diffs: funnel totals,
    /// incident counts, phase self-times, match-phase totals, and every
    /// raw counter. Keys ending in `_ns` are compared upward-only
    /// (slower is a regression); everything else is compared in both
    /// directions (count drift is a regression too).
    pub fn metrics(&self) -> BTreeMap<String, u64> {
        let mut m = BTreeMap::new();
        m.insert("events".to_string(), self.events);
        m.insert("match_ns".to_string(), self.match_ns);
        m.insert("pattern_ns".to_string(), self.pattern_ns);
        for row in &self.phases {
            m.insert(format!("phase.{}.self_ns", row.name), row.self_ns);
            m.insert(format!("phase.{}.spans", row.name), row.spans);
        }
        for row in &self.funnels {
            for (phase, total) in &row.phases {
                m.insert(format!("funnel.{}.{phase}", row.optimizer), *total);
            }
        }
        for (label, total) in &self.incidents {
            m.insert(format!("incident.{label}"), *total);
        }
        for (name, total) in &self.counters {
            m.insert(format!("counter.{name}"), *total);
        }
        m
    }

    /// Renders the human-readable report.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace report: {} trace(s), {} events",
            self.traces, self.events
        );
        let _ = writeln!(
            out,
            "match phase: {} ns total search, {} ns in pattern matching",
            self.match_ns, self.pattern_ns
        );
        if !self.phases.is_empty() {
            let width = self
                .phases
                .iter()
                .map(|r| r.name.len())
                .max()
                .unwrap_or(0)
                .max(5);
            let _ = writeln!(
                out,
                "\n{:<width$} {:>8} {:>14} {:>14} {:>12} {:>12} {:>12}",
                "phase", "spans", "self_ns", "total_ns", "p50_ns", "p90_ns", "p99_ns"
            );
            for r in &self.phases {
                let _ = writeln!(
                    out,
                    "{:<width$} {:>8} {:>14} {:>14} {:>12} {:>12} {:>12}",
                    r.name,
                    r.spans,
                    r.self_ns,
                    r.total_ns,
                    r.latency.quantile_upper(50),
                    r.latency.quantile_upper(90),
                    r.latency.quantile_upper(99),
                );
            }
        }
        if !self.funnels.is_empty() {
            let _ = writeln!(
                out,
                "\n{:<10} {:>12} {:>12} {:>12} {:>12} {:>12}",
                "optimizer", "classified", "admitted", "matched", "dep_checked", "applied"
            );
            for r in &self.funnels {
                let _ = writeln!(
                    out,
                    "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12}",
                    r.optimizer,
                    r.phase("classified"),
                    r.phase("admitted"),
                    r.phase("matched"),
                    r.phase("dep_checked"),
                    r.phase("applied"),
                );
            }
        }
        let hot: Vec<&(String, u64)> =
            self.incidents.iter().filter(|(_, n)| *n > 0).collect();
        if !hot.is_empty() {
            let _ = writeln!(out, "\nincidents:");
            for (label, total) in hot {
                let _ = writeln!(out, "  {label}: {total}");
            }
        }
        out
    }

    /// Renders the machine-readable report — the format `--baseline`
    /// reads back (only the `metrics` object is compared, so a
    /// committed baseline may prune machine-dependent `_ns` keys to
    /// gate purely on deterministic counts).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"traces\":{},\"events\":{},\"metrics\":{{",
            self.traces, self.events
        );
        for (i, (k, v)) in self.metrics().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(k, &mut out);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"funnels\":[");
        for (i, r) in self.funnels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"optimizer\":");
            write_json_string(&r.optimizer, &mut out);
            for (phase, total) in &r.phases {
                out.push(',');
                write_json_string(phase, &mut out);
                let _ = write!(out, ":{total}");
            }
            out.push('}');
        }
        out.push_str("],\"phases\":[");
        for (i, r) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_json_string(&r.name, &mut out);
            let _ = write!(
                out,
                ",\"spans\":{},\"self_ns\":{},\"total_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{}}}",
                r.spans,
                r.self_ns,
                r.total_ns,
                r.latency.quantile_upper(50),
                r.latency.quantile_upper(90),
                r.latency.quantile_upper(99),
            );
        }
        out.push_str("]}");
        out
    }
}

/// One metric that moved past the threshold.
#[derive(Clone, Debug)]
pub struct Regression {
    /// Metric key (see [`Report::metrics`]).
    pub metric: String,
    /// Baseline value.
    pub baseline: u64,
    /// Current value.
    pub current: u64,
    /// Signed percent change relative to the baseline.
    pub change_pct: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} -> {} ({:+.1}%)",
            self.metric, self.baseline, self.current, self.change_pct
        )
    }
}

/// Diffs `current` against a baseline report (the [`Report::to_json`]
/// format). Only metrics present in **both** reports are compared, so a
/// baseline pruned down to deterministic counters gates exactly those.
/// Keys ending in `_ns` regress only upward (slower); all other keys
/// regress on drift in either direction past `threshold_pct`.
///
/// # Errors
///
/// Returns an error when the baseline is not valid report JSON.
pub fn compare(
    current: &Report,
    baseline_json: &str,
    threshold_pct: f64,
) -> Result<Vec<Regression>, String> {
    let baseline = json::parse(baseline_json).map_err(|e| format!("baseline: {e}"))?;
    let metrics = baseline
        .get("metrics")
        .and_then(Json::members)
        .ok_or_else(|| "baseline: no `metrics` object".to_string())?;
    let ours = current.metrics();
    let mut regressions = Vec::new();
    for (key, value) in metrics {
        let Some(base) = value.as_u64() else { continue };
        let Some(&cur) = ours.get(key) else { continue };
        let time_metric = key.ends_with("_ns");
        let change_pct = if base == 0 {
            if cur == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (cur as f64 - base as f64) / base as f64 * 100.0
        };
        let over = change_pct > threshold_pct;
        let under = !time_metric && change_pct < -threshold_pct;
        if over || under {
            regressions.push(Regression {
                metric: key.clone(),
                baseline: base,
                current: cur,
                change_pct,
            });
        }
    }
    regressions.sort_by(|a, b| {
        b.change_pct
            .abs()
            .partial_cmp(&a.change_pct.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(s: &str) -> String {
        s.to_string()
    }

    fn sample_trace() -> Vec<ParsedEvent> {
        let text = [
            line(r#"{"seq":0,"ts_ns":0,"type":"span_open","name":"driver.attempt","span":1}"#),
            line(r#"{"seq":1,"ts_ns":10,"type":"span_open","name":"dep.update","span":2}"#),
            line(
                r#"{"seq":2,"ts_ns":40,"type":"span_close","name":"dep.update","span":2,"fields":{"elapsed_ns":30}}"#,
            ),
            line(
                r#"{"seq":3,"ts_ns":100,"type":"span_close","name":"driver.attempt","span":1,"fields":{"outcome":"applied","search_ns":50,"pattern_ns":20,"elapsed_ns":100}}"#,
            ),
            line(r#"{"seq":4,"ts_ns":100,"type":"counter","name":"funnel.CTP.classified","value":8,"delta":8}"#),
            line(r#"{"seq":5,"ts_ns":100,"type":"counter","name":"funnel.CTP.admitted","value":3,"delta":3}"#),
            line(r#"{"seq":6,"ts_ns":100,"type":"counter","name":"funnel.CTP.matched","value":2,"delta":2}"#),
            line(r#"{"seq":7,"ts_ns":100,"type":"counter","name":"funnel.CTP.applied","value":1,"delta":1}"#),
            line(r#"{"seq":8,"ts_ns":100,"type":"counter","name":"guard.transient_retries","value":2,"delta":2}"#),
            line(r#"{"seq":9,"ts_ns":100,"type":"event","name":"search.degraded"}"#),
        ]
        .join("\n");
        parse_trace(&text).unwrap()
    }

    #[test]
    fn attributes_self_time_and_funnels() {
        let report = Report::build(&[sample_trace()]);
        assert_eq!(report.traces, 1);
        assert_eq!(report.events, 10);
        assert_eq!(report.match_ns, 50);
        assert_eq!(report.pattern_ns, 20);
        let attempt = report
            .phases
            .iter()
            .find(|p| p.name == "driver.attempt")
            .unwrap();
        assert_eq!(attempt.total_ns, 100);
        assert_eq!(attempt.self_ns, 70, "child dep.update must be subtracted");
        let dep = report.phases.iter().find(|p| p.name == "dep.update").unwrap();
        assert_eq!(dep.self_ns, 30);
        let ctp = report
            .funnels
            .iter()
            .find(|f| f.optimizer == "CTP")
            .unwrap();
        assert_eq!(ctp.phase("classified"), 8);
        assert_eq!(ctp.phase("admitted"), 3);
        assert_eq!(ctp.phase("matched"), 2);
        assert_eq!(ctp.phase("applied"), 1);
        let retries = report
            .incidents
            .iter()
            .find(|(l, _)| l == "transient_retries")
            .unwrap();
        assert_eq!(retries.1, 2);
        let degraded = report
            .incidents
            .iter()
            .find(|(l, _)| l == "degraded_searches")
            .unwrap();
        assert_eq!(degraded.1, 1, "instant degraded events count as incidence");
    }

    #[test]
    fn two_traces_sum_and_sampling_scales() {
        let sampled = parse_trace(
            r#"{"seq":0,"ts_ns":0,"type":"span_open","name":"driver.attempt","span":1}
{"seq":1,"ts_ns":9,"type":"span_close","name":"driver.attempt","span":1,"fields":{"search_ns":10,"pattern_ns":4,"sample":4,"elapsed_ns":9}}"#,
        )
        .unwrap();
        let report = Report::build(&[sample_trace(), sampled]);
        assert_eq!(report.traces, 2);
        assert_eq!(report.match_ns, 50 + 40, "sampled span scales by weight");
        assert_eq!(report.pattern_ns, 20 + 16);
    }

    #[test]
    fn report_json_round_trips_and_compare_flags_regressions() {
        let base = Report::build(&[sample_trace()]);
        let baseline_json = base.to_json();
        json::validate(&baseline_json).unwrap();

        // Identical run: nothing regresses.
        assert!(compare(&base, &baseline_json, 10.0).unwrap().is_empty());

        // Inflate match time by 50%: an upward _ns regression.
        let mut slow = base.clone();
        slow.match_ns = slow.match_ns * 3 / 2;
        let regs = compare(&slow, &baseline_json, 20.0).unwrap();
        assert!(regs.iter().any(|r| r.metric == "match_ns"), "{regs:?}");

        // Faster is NOT a regression for _ns metrics...
        let mut fast = base.clone();
        fast.match_ns /= 2;
        assert!(compare(&fast, &baseline_json, 20.0)
            .unwrap()
            .iter()
            .all(|r| r.metric != "match_ns"));

        // ...but count drift regresses in both directions.
        let mut drifted = base.clone();
        for f in &mut drifted.funnels {
            for (_, v) in &mut f.phases {
                *v = 0;
            }
        }
        let regs = compare(&drifted, &baseline_json, 20.0).unwrap();
        assert!(
            regs.iter().any(|r| r.metric.starts_with("funnel.CTP.")),
            "{regs:?}"
        );
    }

    #[test]
    fn compare_skips_metrics_missing_from_either_side() {
        let base = Report::build(&[sample_trace()]);
        // A pruned baseline gating only on one deterministic counter.
        let baseline = r#"{"metrics":{"funnel.CTP.applied":1,"not.a.metric":99}}"#;
        assert!(compare(&base, baseline, 5.0).unwrap().is_empty());
    }

    #[test]
    fn parse_trace_reports_line_numbers() {
        let err = parse_trace("{\"type\":\"event\",\"name\":\"x\"}\nnot json").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
