//! A minimal JSON parser (no external dependencies). [`validate`] checks
//! that a `--trace` line is well-formed; [`parse`] builds a [`Json`]
//! value for consumers that need the content — the cross-run report
//! engine reads whole JSONL traces and baseline reports through it.

/// A parsed JSON value. Numbers keep their raw token text so integer
/// values round-trip losslessly (trace sequence numbers and nanosecond
/// totals can exceed the 2^53 range where `f64` goes lossy).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw token text.
    Num(String),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member `key`, if this is an object that has one.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an unsigned integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses `text` as exactly one JSON value (leading and trailing
/// whitespace allowed).
///
/// # Errors
///
/// Returns a one-line description with the byte offset of the first
/// syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Validates that `text` is exactly one well-formed JSON value (leading
/// and trailing whitespace allowed).
///
/// # Errors
///
/// Returns a one-line description with the byte offset of the first
/// syntax error.
pub fn validate(text: &str) -> Result<(), String> {
    parse(text).map(|_| ())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(members)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `}`"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `]`"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        // Collect raw UTF-8 runs between escapes byte-wise; the input is
        // a &str so any multi-byte sequence is already valid UTF-8.
        let mut run_start = self.pos;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.run(run_start, self.pos - 1));
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.run(run_start, self.pos - 1));
                    match self.bump() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // A high surrogate must pair with a
                                // following \uXXXX low surrogate.
                                self.literal("\\u")
                                    .map_err(|_| self.err("unpaired surrogate"))?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("bad \\u escape")),
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    run_start = self.pos;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character"));
                }
                Some(_) => {}
            }
        }
    }

    fn run(&self, start: usize, end: usize) -> &'a str {
        std::str::from_utf8(&self.bytes[start..end]).unwrap_or("")
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            match self.bump() {
                Some(b) if b.is_ascii_hexdigit() => {
                    code = code * 16 + (b as char).to_digit(16).unwrap_or(0);
                }
                _ => return Err(self.err("bad \\u escape")),
            }
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut digits = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                digits += 1;
            }
            if digits == 0 {
                return Err(self.err("expected a fraction digit"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut digits = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                digits += 1;
            }
            if digits == 0 {
                return Err(self.err("expected an exponent digit"));
            }
        }
        Ok(Json::Num(self.run(start, self.pos).to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::{parse, validate, Json};

    #[test]
    fn accepts_valid_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e3",
            r#"{"a":[1,2,{"b":"c\nd"}],"e":true,"f":null}"#,
            r#"  {"seq":0,"ts_ns":12,"type":"counter","name":"x","value":3,"delta":1}  "#,
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_json() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "tru",
            "\"unterminated",
            "01",
            "1.",
            "{\"a\":1}garbage",
            "{'a':1}",
            "\"\\ud800\"",
            "\"\\ud800\\u0041\"",
        ] {
            assert!(validate(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn parses_values_and_escapes() {
        let v = parse(r#"{"n":"a\u00e9\n\"b\\","big":18446744073709551615,"neg":-7}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_str), Some("aé\n\"b\\"));
        assert_eq!(v.get("big").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(v.get("neg").and_then(Json::as_i64), Some(-7));
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        let v = parse("[1,2.5,true,null]").unwrap();
        let items = v.items().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2], Json::Bool(true));
        assert_eq!(items[3], Json::Null);
    }
}
