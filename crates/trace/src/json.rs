//! A minimal JSON validator (no external dependencies) used by the
//! trace-contract tests and the CLI to assert that every `--trace` line
//! is well-formed JSON. It validates syntax only — no DOM is built.

/// Validates that `text` is exactly one well-formed JSON value (leading
/// and trailing whitespace allowed).
///
/// # Errors
///
/// Returns a one-line description with the byte offset of the first
/// syntax error.
pub fn validate(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `}`"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `]`"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(b) if b.is_ascii_hexdigit() => {}
                                _ => return Err(self.err("bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character"));
                }
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut digits = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                digits += 1;
            }
            if digits == 0 {
                return Err(self.err("expected a fraction digit"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut digits = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                digits += 1;
            }
            if digits == 0 {
                return Err(self.err("expected an exponent digit"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_valid_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e3",
            r#"{"a":[1,2,{"b":"c\nd"}],"e":true,"f":null}"#,
            r#"  {"seq":0,"ts_ns":12,"type":"counter","name":"x","value":3,"delta":1}  "#,
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_json() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "tru",
            "\"unterminated",
            "01",
            "1.",
            "{\"a\":1}garbage",
            "{'a':1}",
        ] {
            assert!(validate(bad).is_err(), "accepted: {bad}");
        }
    }
}
