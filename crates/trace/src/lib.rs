//! # gospel-trace — structured tracing and metrics for GENesis
//!
//! A zero-dependency observability substrate: a thread-safe [`Recorder`]
//! collects **spans** (paired open/close events with elapsed time),
//! **instant events**, monotone **counters**, and log₂-bucketed
//! **histograms**. Everything is in memory; the consumer decides what to
//! do with it — stream events as JSONL ([`Event::to_jsonl`]), print an
//! end-of-run summary ([`Recorder::metrics_table`]), or fold counters
//! into a benchmark report.
//!
//! The event vocabulary used across the GENesis stack is documented in
//! DESIGN.md ("Observability"); nothing here hard-codes it — names are
//! plain strings, so new subsystems can add events without touching this
//! crate.
//!
//! With the `record` feature disabled (it is on by default) the whole API
//! compiles to inline no-ops: spans are inert, counters vanish, and
//! [`Recorder::drain_events`] returns nothing, so untraced builds pay
//! zero cost. With the feature *enabled* but no recorder installed in a
//! driver or session, the cost is one `Option` check per probe.
//!
//! ```
//! use gospel_trace::{Recorder, Span, Value};
//! use std::sync::Arc;
//!
//! let rec = Arc::new(Recorder::new());
//! let span = Span::open(Some(&rec), "demo.work", &[("input", Value::u(3))]);
//! rec.add("demo.widgets", 2);
//! span.close(&[("outcome", Value::str("ok"))]);
//! for event in rec.drain_events() {
//!     let line = event.to_jsonl();
//!     gospel_trace::json::validate(&line).unwrap();
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod report;

use std::borrow::Cow;
#[cfg(feature = "record")]
use std::collections::BTreeMap;
use std::fmt;

/// An event or counter name: borrowed for the (overwhelmingly common)
/// `&'static str` literals, owned for dynamically-built names such as
/// per-clause counters. Keeping literals borrowed means recording an
/// event allocates only for genuinely dynamic strings.
pub type Name = Cow<'static, str>;

// ---------------------------------------------------------------------------
// shared data model (compiled regardless of the `record` feature)
// ---------------------------------------------------------------------------

/// A structured field value attached to an event.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A string — borrowed for `&'static str` literals (no allocation),
    /// owned for dynamic strings.
    Str(Cow<'static, str>),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Shorthand for [`Value::Str`]. Literals stay borrowed; pass an
    /// owned `String` (cloning if needed) for dynamic values.
    pub fn str(s: impl Into<Cow<'static, str>>) -> Value {
        Value::Str(s.into())
    }

    /// Shorthand for [`Value::UInt`].
    pub fn u(n: u64) -> Value {
        Value::UInt(n)
    }

    /// Shorthand for a `usize` counter value.
    pub fn us(n: usize) -> Value {
        Value::UInt(n as u64)
    }

    /// Shorthand for [`Value::Int`].
    pub fn i(n: impl Into<i64>) -> Value {
        Value::Int(n.into())
    }

    /// Shorthand for [`Value::Bool`].
    pub fn b(v: bool) -> Value {
        Value::Bool(v)
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => write_json_string(s, out),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::UInt(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// What kind of record an [`Event`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (paired with a later [`EventKind::SpanClose`] carrying
    /// the same `span` id).
    SpanOpen,
    /// A span closed; its fields include `elapsed_ns`.
    SpanClose,
    /// A point-in-time structured event.
    Instant,
    /// A counter increment; `value` holds the post-increment running
    /// total (monotone within a run) and `delta` the increment.
    Counter,
}

impl EventKind {
    /// The `type` string used in the JSONL encoding.
    pub fn type_name(self) -> &'static str {
        match self {
            EventKind::SpanOpen => "span_open",
            EventKind::SpanClose => "span_close",
            EventKind::Instant => "event",
            EventKind::Counter => "counter",
        }
    }
}

/// One recorded event. `seq` is unique and strictly increasing per
/// recorder; `ts_ns` is nanoseconds since the recorder was created.
#[derive(Clone, Debug)]
pub struct Event {
    /// Strictly increasing sequence number.
    pub seq: u64,
    /// Nanoseconds since [`Recorder::new`].
    pub ts_ns: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Event name (dot-separated, e.g. `driver.attempt`).
    pub name: Name,
    /// Span id for [`EventKind::SpanOpen`] / [`EventKind::SpanClose`].
    pub span: Option<u64>,
    /// Post-increment running total for [`EventKind::Counter`].
    pub value: Option<u64>,
    /// Increment for [`EventKind::Counter`].
    pub delta: Option<u64>,
    /// Structured fields, in recording order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Renders the event as one JSON object (no trailing newline) — the
    /// line format of `--trace out.jsonl`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push('{');
        out.push_str("\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"ts_ns\":");
        out.push_str(&self.ts_ns.to_string());
        out.push_str(",\"type\":\"");
        out.push_str(self.kind.type_name());
        out.push_str("\",\"name\":");
        write_json_string(&self.name, &mut out);
        if let Some(id) = self.span {
            out.push_str(",\"span\":");
            out.push_str(&id.to_string());
        }
        if let Some(v) = self.value {
            out.push_str(",\"value\":");
            out.push_str(&v.to_string());
        }
        if let Some(d) = self.delta {
            out.push_str(",\"delta\":");
            out.push_str(&d.to_string());
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, &mut out);
                out.push(':');
                v.write_json(&mut out);
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// The field named `key`, if present.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string literal — the
/// same escaping the event stream uses, shared so report writers stay
/// consistent with it.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A point-in-time snapshot of one histogram.
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// log₂ buckets: `buckets[i]` counts observations in `[2^i, 2^(i+1))`
    /// (bucket 0 counts zeros and ones).
    pub buckets: [u64; 64],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 64],
        }
    }
}

impl HistogramSnapshot {
    /// Mean observation, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimate of the q-quantile (q in 0..=100): the rank is located in
    /// its log₂ bucket and the value interpolated linearly by rank
    /// position within that bucket's bounds, clamped to the observed
    /// `min`/`max`. Still an estimate (the true distribution inside a
    /// bucket is unknown) but no longer biased to the bucket's upper
    /// bound, so p50 of a tight cluster lands inside the cluster.
    pub fn quantile_upper(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = self
            .count
            .saturating_mul(q.min(100))
            .div_ceil(100)
            .max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo: u64 = if i == 0 { 0 } else { 1u64 << i };
                let hi: u64 = if i == 0 {
                    1
                } else if i >= 63 {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                };
                let pos = rank - seen; // 1..=n within this bucket
                let est = lo + (u128::from(hi - lo) * u128::from(pos) / u128::from(n)) as u64;
                return est.clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Records `weight` observations of `value` (weight 0 is a no-op).
    /// The weighted form backs trace sampling: observing 1-in-N spans
    /// with weight N keeps count/sum/quantile estimates unbiased.
    pub fn record(&mut self, value: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        self.max = self.max.max(value);
        self.min = if self.count == 0 {
            value
        } else {
            self.min.min(value)
        };
        self.count += weight;
        self.sum = self.sum.saturating_add(value.saturating_mul(weight));
        let bucket = (64 - u64::leading_zeros(value.max(1))).saturating_sub(1) as usize;
        self.buckets[bucket.min(63)] += weight;
    }

    /// Folds another snapshot into this one bucket-wise — the histogram
    /// half of recorder merging and [`MetricsSnapshot::merge`].
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.min = match (self.count, other.count) {
            (_, 0) => self.min,
            (0, _) => other.min,
            _ => self.min.min(other.min),
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets) {
            *b += o;
        }
    }
}

/// A point-in-time, mergeable export of a recorder's metric totals —
/// counters and histograms without the event stream. Batch workers and
/// chaos cells each take a snapshot, merge them, and expose one rollup;
/// [`MetricsSnapshot::to_prometheus`] renders the text exposition format
/// a scrape endpoint serves.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The total of one counter (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Folds `other` into this snapshot: counters add, histograms merge
    /// bucket-wise. Order-independent, so any merge tree over workers
    /// produces the same rollup.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, total) in &other.counters {
            match self.counters.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => self.counters[i].1 = self.counters[i].1.saturating_add(*total),
                Err(i) => self.counters.insert(i, (name.clone(), *total)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => self.histograms[i].1.merge(h),
                Err(i) => self.histograms.insert(i, (name.clone(), *h)),
            }
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Dots and other non-metric characters in names become `_`;
    /// counters get a `_total` suffix, histograms emit cumulative
    /// `_bucket{le="..."}` series plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, total) in &self.counters {
            let m = prom_name(name);
            let _ = writeln!(out, "# TYPE {m}_total counter");
            let _ = writeln!(out, "{m}_total {total}");
        }
        for (name, h) in &self.histograms {
            let m = prom_name(name);
            let _ = writeln!(out, "# TYPE {m} histogram");
            let mut cumulative = 0u64;
            let top = h
                .buckets
                .iter()
                .rposition(|&n| n > 0)
                .map(|i| i + 1)
                .unwrap_or(0);
            for (i, &n) in h.buckets.iter().take(top).enumerate() {
                cumulative += n;
                let le: u64 = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                let _ = writeln!(out, "{m}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{m}_sum {}", h.sum);
            let _ = writeln!(out, "{m}_count {}", h.count);
        }
        out
    }
}

/// Maps an event-vocabulary name (`driver.attempts`) onto a legal
/// Prometheus metric name (`driver_attempts`).
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out
        .chars()
        .next()
        .map(|c| c.is_ascii_digit())
        .unwrap_or(true)
    {
        out.insert(0, '_');
    }
    out
}

// ---------------------------------------------------------------------------
// recording implementation
// ---------------------------------------------------------------------------

#[cfg(feature = "record")]
mod imp {
    use super::*;
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    #[derive(Debug, Default)]
    struct Inner {
        seq: u64,
        next_span: u64,
        open_spans: u64,
        events: Vec<Event>,
        counters: BTreeMap<String, u64>,
        histograms: BTreeMap<String, HistogramSnapshot>,
    }

    /// Thread-safe event/metric collector. See the crate docs.
    #[derive(Debug)]
    pub struct Recorder {
        created: Instant,
        inner: Mutex<Inner>,
    }

    impl Default for Recorder {
        fn default() -> Self {
            Recorder::new()
        }
    }

    impl Recorder {
        /// A fresh recorder with an empty buffer.
        pub fn new() -> Recorder {
            Recorder {
                created: Instant::now(),
                inner: Mutex::new(Inner::default()),
            }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
            // A panic while holding this mutex cannot corrupt it (only
            // Vec/BTreeMap pushes happen inside); recover the data.
            self.inner.lock().unwrap_or_else(|p| p.into_inner())
        }

        fn ts_ns(&self) -> u64 {
            u64::try_from(self.created.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }

        fn push(&self, inner: &mut Inner, mut event: Event) {
            event.seq = inner.seq;
            inner.seq += 1;
            if inner.events.capacity() == inner.events.len() {
                // Grow in large steps: Event is a wide struct, and a hot
                // driver loop pushes hundreds per run.
                inner.events.reserve(256);
            }
            inner.events.push(event);
        }

        /// Records an instant event.
        pub fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
            let ts_ns = self.ts_ns();
            let mut inner = self.lock();
            let event = Event {
                seq: 0,
                ts_ns,
                kind: EventKind::Instant,
                name: Name::Borrowed(name),
                span: None,
                value: None,
                delta: None,
                fields: fields.to_vec(),
            };
            self.push(&mut inner, event);
        }

        /// Adds `delta` to counter `name` and records a counter event
        /// carrying the new running total. Counters only ever increase, so
        /// the emitted `value` sequence is monotone per name.
        pub fn add(&self, name: impl Into<Name>, delta: u64) {
            let ts_ns = self.ts_ns();
            let mut inner = self.lock();
            self.bump(&mut inner, ts_ns, name.into(), delta);
        }

        /// Adds every `(name, delta)` pair under one lock acquisition —
        /// the cheap way to flush a batch of counters accumulated locally
        /// by a hot loop. Each pair still emits its own counter event.
        pub fn add_many(&self, items: Vec<(Name, u64)>) {
            if items.is_empty() {
                return;
            }
            let ts_ns = self.ts_ns();
            let mut inner = self.lock();
            for (name, delta) in items {
                self.bump(&mut inner, ts_ns, name, delta);
            }
        }

        fn bump(&self, inner: &mut Inner, ts_ns: u64, name: Name, delta: u64) {
            let total = match inner.counters.get_mut(name.as_ref()) {
                Some(t) => {
                    *t = t.saturating_add(delta);
                    *t
                }
                None => {
                    inner.counters.insert(name.to_string(), delta);
                    delta
                }
            };
            let event = Event {
                seq: 0,
                ts_ns,
                kind: EventKind::Counter,
                name,
                span: None,
                value: Some(total),
                delta: Some(delta),
                fields: Vec::new(),
            };
            self.push(inner, event);
        }

        /// Records one observation (typically nanoseconds) into histogram
        /// `name`. Histograms feed the metrics table only; they do not
        /// emit per-observation events.
        pub fn observe(&self, name: &str, value: u64) {
            self.observe_n(name, value, 1);
        }

        /// Records `weight` observations of `value` into histogram
        /// `name` under one lock acquisition. The sampling controller
        /// observes 1-in-N spans with weight N so the histogram stays an
        /// unbiased estimate of the full population.
        pub fn observe_n(&self, name: &str, value: u64, weight: u64) {
            if weight == 0 {
                return;
            }
            let mut inner = self.lock();
            if !inner.histograms.contains_key(name) {
                inner
                    .histograms
                    .insert(name.to_string(), HistogramSnapshot::default());
            }
            let h = inner.histograms.get_mut(name).expect("just inserted");
            h.record(value, weight);
        }

        /// A point-in-time copy of every counter and histogram total —
        /// the mergeable, exportable form of this recorder's metrics.
        pub fn snapshot(&self) -> MetricsSnapshot {
            let inner = self.lock();
            MetricsSnapshot {
                counters: inner
                    .counters
                    .iter()
                    .map(|(k, v)| (k.clone(), *v))
                    .collect(),
                histograms: inner
                    .histograms
                    .iter()
                    .map(|(k, v)| (k.clone(), *v))
                    .collect(),
            }
        }

        /// Opens a span; returns `(id, open_ts_ns)` so the close can
        /// derive the elapsed time from one clock read.
        pub(super) fn span_open(
            &self,
            name: &'static str,
            fields: &[(&'static str, Value)],
        ) -> (u64, u64) {
            let ts_ns = self.ts_ns();
            let mut inner = self.lock();
            inner.next_span += 1;
            inner.open_spans += 1;
            let id = inner.next_span;
            let event = Event {
                seq: 0,
                ts_ns,
                kind: EventKind::SpanOpen,
                name: Name::Borrowed(name),
                span: Some(id),
                value: None,
                delta: None,
                fields: fields.to_vec(),
            };
            self.push(&mut inner, event);
            (id, ts_ns)
        }

        pub(super) fn span_close(
            &self,
            id: u64,
            name: &'static str,
            open_ts_ns: u64,
            fields: &[(&'static str, Value)],
        ) {
            let ts_ns = self.ts_ns();
            let mut inner = self.lock();
            inner.open_spans = inner.open_spans.saturating_sub(1);
            let mut all = Vec::with_capacity(fields.len() + 1);
            all.extend_from_slice(fields);
            all.push((
                "elapsed_ns",
                Value::UInt(ts_ns.saturating_sub(open_ts_ns)),
            ));
            let event = Event {
                seq: 0,
                ts_ns,
                kind: EventKind::SpanClose,
                name: Name::Borrowed(name),
                span: Some(id),
                value: None,
                delta: None,
                fields: all,
            };
            self.push(&mut inner, event);
        }

        /// Takes every buffered event, leaving the buffer empty (counters
        /// and histograms keep their totals).
        pub fn drain_events(&self) -> Vec<Event> {
            std::mem::take(&mut self.lock().events)
        }

        /// Folds another recorder's buffered events and metric totals
        /// into this one, emptying `other`. The batch driver gives each
        /// worker thread its own recorder and merges them after the
        /// scope joins, so `--metrics` reports one coherent stream.
        ///
        /// Merged events are re-stamped with this recorder's sequence
        /// numbers (their relative order is preserved) and their span
        /// ids are offset past this recorder's, so ids never collide.
        /// Counter events are re-based onto this recorder's running
        /// totals — the per-name `value` sequence stays monotone and
        /// still satisfies `value == previous total + delta`. Counter
        /// totals that `other` accumulated before a `drain_events` call
        /// (no event left to replay) are folded into the totals map
        /// directly. Timestamps keep each worker's own clock origin;
        /// order across merged recorders by `seq`, not `ts_ns`.
        pub fn merge_from(&self, other: &Recorder) {
            let taken = std::mem::take(&mut *other.lock());
            let mut inner = self.lock();
            // Residuals first: totals from `other` whose events are gone
            // (drained earlier) still belong in the merged totals.
            let mut replayed: BTreeMap<&str, u64> = BTreeMap::new();
            for ev in &taken.events {
                if matches!(ev.kind, EventKind::Counter) {
                    *replayed.entry(ev.name.as_ref()).or_insert(0) += ev.delta.unwrap_or(0);
                }
            }
            for (name, total) in &taken.counters {
                let rest = total.saturating_sub(replayed.get(name.as_str()).copied().unwrap_or(0));
                if rest > 0 {
                    *inner.counters.entry(name.clone()).or_insert(0) += rest;
                }
            }
            drop(replayed);
            let span_base = inner.next_span;
            for mut ev in taken.events {
                if let Some(id) = ev.span {
                    ev.span = Some(id + span_base);
                }
                if matches!(ev.kind, EventKind::Counter) {
                    let delta = ev.delta.unwrap_or(0);
                    let total = match inner.counters.get_mut(ev.name.as_ref()) {
                        Some(t) => {
                            *t = t.saturating_add(delta);
                            *t
                        }
                        None => {
                            inner.counters.insert(ev.name.to_string(), delta);
                            delta
                        }
                    };
                    ev.value = Some(total);
                }
                self.push(&mut inner, ev);
            }
            inner.next_span += taken.next_span;
            inner.open_spans += taken.open_spans;
            for (name, h) in taken.histograms {
                match inner.histograms.get_mut(&name) {
                    None => {
                        inner.histograms.insert(name, h);
                    }
                    Some(mine) => mine.merge(&h),
                }
            }
        }

        /// Number of spans currently open (opened but not yet closed).
        pub fn open_spans(&self) -> u64 {
            self.lock().open_spans
        }

        /// Counter totals, sorted by name.
        pub fn counters(&self) -> Vec<(String, u64)> {
            self.lock()
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect()
        }

        /// The total of one counter (zero when never incremented).
        pub fn counter(&self, name: &str) -> u64 {
            self.lock().counters.get(name).copied().unwrap_or(0)
        }

        /// Histogram snapshots, sorted by name.
        pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
            self.lock()
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect()
        }

        /// Renders counters and histograms as an aligned end-of-run
        /// summary (the `--metrics` table).
        pub fn metrics_table(&self) -> String {
            use std::fmt::Write as _;
            let mut out = String::new();
            let counters = self.counters();
            if !counters.is_empty() {
                let width = counters.iter().map(|(k, _)| k.len()).max().unwrap_or(0).max(7);
                let _ = writeln!(out, "{:<width$} {:>12}", "counter", "total");
                for (name, total) in &counters {
                    let _ = writeln!(out, "{name:<width$} {total:>12}");
                }
            }
            let hists = self.histograms();
            if !hists.is_empty() {
                if !out.is_empty() {
                    out.push('\n');
                }
                let width = hists.iter().map(|(k, _)| k.len()).max().unwrap_or(0).max(9);
                let _ = writeln!(
                    out,
                    "{:<width$} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
                    "histogram", "count", "mean", "p50", "p90", "p99", "max"
                );
                for (name, h) in &hists {
                    let _ = writeln!(
                        out,
                        "{name:<width$} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
                        h.count,
                        h.mean(),
                        h.quantile_upper(50),
                        h.quantile_upper(90),
                        h.quantile_upper(99),
                        h.max
                    );
                }
            }
            out
        }
    }

    /// An open span. Dropping it closes the span (so error paths cannot
    /// leak an unbalanced open); [`Span::close`] attaches outcome fields.
    #[derive(Debug)]
    pub struct Span {
        rec: Option<Arc<Recorder>>,
        id: u64,
        name: &'static str,
        open_ts_ns: u64,
    }

    impl Span {
        /// Opens a span on `rec`; with `None` the span is inert.
        pub fn open(
            rec: Option<&Arc<Recorder>>,
            name: &'static str,
            fields: &[(&'static str, Value)],
        ) -> Span {
            match rec {
                Some(r) => {
                    let (id, open_ts_ns) = r.span_open(name, fields);
                    Span {
                        rec: Some(Arc::clone(r)),
                        id,
                        name,
                        open_ts_ns,
                    }
                }
                None => Span {
                    rec: None,
                    id: 0,
                    name: "",
                    open_ts_ns: 0,
                },
            }
        }

        /// An inert span (records nothing).
        pub fn none() -> Span {
            Span::open(None, "", &[])
        }

        /// Nanoseconds since the span opened (zero for an inert span).
        pub fn elapsed_ns(&self) -> u64 {
            match &self.rec {
                Some(r) => r.ts_ns().saturating_sub(self.open_ts_ns),
                None => 0,
            }
        }

        /// Closes the span, attaching `fields` to the close event.
        pub fn close(mut self, fields: &[(&'static str, Value)]) {
            if let Some(rec) = self.rec.take() {
                rec.span_close(self.id, self.name, self.open_ts_ns, fields);
            }
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            if let Some(rec) = self.rec.take() {
                rec.span_close(self.id, self.name, self.open_ts_ns, &[]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// no-op implementation (feature `record` disabled)
// ---------------------------------------------------------------------------

#[cfg(not(feature = "record"))]
mod imp {
    use super::*;
    use std::sync::Arc;

    /// No-op recorder: every method is an empty inline function.
    #[derive(Debug, Default)]
    pub struct Recorder;

    impl Recorder {
        /// A recorder that records nothing.
        #[inline]
        pub fn new() -> Recorder {
            Recorder
        }

        /// No-op.
        #[inline]
        pub fn event(&self, _name: &'static str, _fields: &[(&'static str, Value)]) {}

        /// No-op.
        #[inline]
        pub fn add(&self, _name: impl Into<Name>, _delta: u64) {}

        /// No-op.
        #[inline]
        pub fn add_many(&self, _items: Vec<(Name, u64)>) {}

        /// No-op.
        #[inline]
        pub fn observe(&self, _name: &str, _value: u64) {}

        /// No-op.
        #[inline]
        pub fn observe_n(&self, _name: &str, _value: u64, _weight: u64) {}

        /// Always empty.
        #[inline]
        pub fn snapshot(&self) -> MetricsSnapshot {
            MetricsSnapshot::default()
        }

        /// Always empty.
        #[inline]
        pub fn drain_events(&self) -> Vec<Event> {
            Vec::new()
        }

        /// Inert: there is nothing to merge.
        #[inline]
        pub fn merge_from(&self, _other: &Recorder) {}

        /// Always zero.
        #[inline]
        pub fn open_spans(&self) -> u64 {
            0
        }

        /// Always empty.
        #[inline]
        pub fn counters(&self) -> Vec<(String, u64)> {
            Vec::new()
        }

        /// Always zero.
        #[inline]
        pub fn counter(&self, _name: &str) -> u64 {
            0
        }

        /// Always empty.
        #[inline]
        pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
            Vec::new()
        }

        /// Always empty.
        #[inline]
        pub fn metrics_table(&self) -> String {
            String::new()
        }
    }

    /// Inert span.
    #[derive(Debug)]
    pub struct Span;

    impl Span {
        /// Inert: records nothing.
        #[inline]
        pub fn open(
            _rec: Option<&Arc<Recorder>>,
            _name: &'static str,
            _fields: &[(&'static str, Value)],
        ) -> Span {
            Span
        }

        /// Inert span.
        #[inline]
        pub fn none() -> Span {
            Span
        }

        /// Always zero.
        #[inline]
        pub fn elapsed_ns(&self) -> u64 {
            0
        }

        /// No-op.
        #[inline]
        pub fn close(self, _fields: &[(&'static str, Value)]) {}
    }
}

pub use imp::{Recorder, Span};

#[cfg(all(test, feature = "record"))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_are_monotone_and_sequenced() {
        let rec = Recorder::new();
        rec.add("a", 3);
        rec.add("a", 0);
        rec.add("a", 5);
        assert_eq!(rec.counter("a"), 8);
        let events = rec.drain_events();
        assert_eq!(events.len(), 3);
        let mut last = 0;
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.kind, EventKind::Counter);
            let v = e.value.unwrap();
            assert!(v >= last, "counter went backwards");
            last = v;
        }
        // draining empties the buffer but keeps totals
        assert!(rec.drain_events().is_empty());
        assert_eq!(rec.counter("a"), 8);
    }

    #[test]
    fn merge_preserves_totals_monotonicity_and_span_identity() {
        let main = Arc::new(Recorder::new());
        main.add("shared", 10);
        main.observe("lat_ns", 100);
        let s = Span::open(Some(&main), "main.work", &[]);
        s.close(&[]);

        let worker = Arc::new(Recorder::new());
        worker.add("shared", 5);
        worker.add("worker.only", 2);
        worker.observe("lat_ns", 300);
        let s = Span::open(Some(&worker), "worker.work", &[]);
        s.close(&[]);
        // Totals accumulated before a drain must survive the merge even
        // though their events are gone.
        let pre_drain = worker.drain_events();
        assert!(!pre_drain.is_empty());
        worker.add("shared", 1);

        main.merge_from(&worker);
        assert_eq!(main.counter("shared"), 16);
        assert_eq!(main.counter("worker.only"), 2);
        assert_eq!(worker.counter("shared"), 0, "merge empties the source");

        let events = main.drain_events();
        // seq re-stamped densely, counter values monotone per name, and
        // value == running total after each delta
        let mut totals: std::collections::BTreeMap<String, u64> = Default::default();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            if e.kind == EventKind::Counter {
                let t = totals.entry(e.name.to_string()).or_insert(0);
                *t += e.delta.unwrap();
                assert!(e.value.unwrap() >= *t, "merged counter went backwards");
            }
        }
        // span ids from the worker were offset, not reused
        let main_spans: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanOpen)
            .map(|e| e.span.unwrap())
            .collect();
        assert_eq!(main_spans.len(), 1); // worker's span events were drained above
        let hist = main.histograms();
        let (_, lat) = hist.iter().find(|(n, _)| n == "lat_ns").unwrap();
        assert_eq!(lat.count, 2);
        assert_eq!(lat.sum, 400);
        assert_eq!(lat.min, 100);
        assert_eq!(lat.max, 300);
    }

    #[test]
    fn merge_offsets_span_ids_of_buffered_spans() {
        let main = Arc::new(Recorder::new());
        let s = Span::open(Some(&main), "main.work", &[]);
        s.close(&[]);
        let worker = Arc::new(Recorder::new());
        let s = Span::open(Some(&worker), "worker.work", &[]);
        s.close(&[]);
        main.merge_from(&worker);
        let ids: Vec<u64> = main
            .drain_events()
            .iter()
            .filter(|e| e.kind == EventKind::SpanOpen)
            .map(|e| e.span.unwrap())
            .collect();
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1], "merged span ids must not collide");
        assert_eq!(main.open_spans(), 0);
    }

    #[test]
    fn spans_balance_even_when_dropped_early() {
        let rec = Arc::new(Recorder::new());
        let s1 = Span::open(Some(&rec), "outer", &[("k", Value::u(1))]);
        assert_eq!(rec.open_spans(), 1);
        {
            let _s2 = Span::open(Some(&rec), "inner", &[]);
            assert_eq!(rec.open_spans(), 2);
            // dropped here without an explicit close
        }
        assert_eq!(rec.open_spans(), 1);
        s1.close(&[("outcome", Value::str("ok"))]);
        assert_eq!(rec.open_spans(), 0);
        let events = rec.drain_events();
        let opens: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanOpen)
            .map(|e| e.span.unwrap())
            .collect();
        let closes: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanClose)
            .map(|e| e.span.unwrap())
            .collect();
        assert_eq!(opens.len(), 2);
        for id in opens {
            assert!(closes.contains(&id), "span {id} never closed");
        }
        // every close carries elapsed_ns
        for e in events.iter().filter(|e| e.kind == EventKind::SpanClose) {
            assert!(e.field("elapsed_ns").is_some());
        }
    }

    #[test]
    fn jsonl_round_trips_escaping() {
        let rec = Recorder::new();
        rec.event(
            "weird",
            &[
                ("quote", Value::str("a\"b")),
                ("slash", Value::str("a\\b")),
                ("newline", Value::str("a\nb")),
                ("neg", Value::i(-3)),
                ("flag", Value::b(true)),
            ],
        );
        for e in rec.drain_events() {
            let line = e.to_jsonl();
            assert!(!line.contains('\n'), "JSONL lines must be single-line");
            json::validate(&line).unwrap_or_else(|err| panic!("{err}: {line}"));
        }
    }

    #[test]
    fn histogram_summary_statistics() {
        let rec = Recorder::new();
        for v in [1u64, 2, 4, 1000, 100_000] {
            rec.observe("ns", v);
        }
        let hists = rec.histograms();
        assert_eq!(hists.len(), 1);
        let (name, h) = &hists[0];
        assert_eq!(name, "ns");
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 101_007);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100_000);
        assert!(h.quantile_upper(50) >= 4);
        assert!(h.quantile_upper(100) >= 100_000 / 2);
        let table = rec.metrics_table();
        assert!(table.contains("histogram"), "{table}");
        assert!(table.contains("ns"), "{table}");
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let rec = Recorder::new();
        // 100 observations spread across [1024, 2048) — the old
        // bucket-upper-bound estimate returned 2048 for every quantile;
        // interpolation must spread estimates through the bucket.
        for i in 0..100u64 {
            rec.observe("ns", 1024 + i * 10);
        }
        let (_, h) = &rec.histograms()[0];
        let p50 = h.quantile_upper(50);
        let p99 = h.quantile_upper(99);
        assert!((1024..=1600).contains(&p50), "p50 {p50} not interpolated");
        assert!(p99 > p50, "p99 {p99} <= p50 {p50}");
        assert!(p99 <= h.max, "p99 {p99} above observed max");
        assert_eq!(h.quantile_upper(0), h.quantile_upper(1));
        // Degenerate single observation: every quantile is that value.
        let rec = Recorder::new();
        rec.observe("one", 777);
        let (_, h) = &rec.histograms()[0];
        for q in [0, 50, 90, 99, 100] {
            assert_eq!(h.quantile_upper(q), 777);
        }
    }

    #[test]
    fn weighted_observations_scale_counts_and_sums() {
        let rec = Recorder::new();
        rec.observe_n("ns", 100, 8);
        rec.observe_n("ns", 200, 0); // weight 0 records nothing
        let (_, h) = &rec.histograms()[0];
        assert_eq!(h.count, 8);
        assert_eq!(h.sum, 800);
        assert_eq!((h.min, h.max), (100, 100));
        assert_eq!(h.mean(), 100);
        assert_eq!(h.quantile_upper(99), 100);
    }

    #[test]
    fn snapshots_merge_and_expose_prometheus() {
        let a = Recorder::new();
        a.add("driver.attempts", 3);
        a.observe("driver.search_ns", 100);
        let b = Recorder::new();
        b.add("driver.attempts", 2);
        b.add("guard.rollbacks", 1);
        b.observe("driver.search_ns", 300);

        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("driver.attempts"), 5);
        assert_eq!(snap.counter("guard.rollbacks"), 1);
        assert_eq!(snap.counter("never.seen"), 0);
        let (_, h) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "driver.search_ns")
            .unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 400);

        // Merging is order-independent.
        let mut other = b.snapshot();
        other.merge(&a.snapshot());
        assert_eq!(other.counter("driver.attempts"), 5);

        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE driver_attempts_total counter"), "{prom}");
        assert!(prom.contains("driver_attempts_total 5"), "{prom}");
        assert!(prom.contains("# TYPE driver_search_ns histogram"), "{prom}");
        assert!(prom.contains("driver_search_ns_bucket{le=\"+Inf\"} 2"), "{prom}");
        assert!(prom.contains("driver_search_ns_sum 400"), "{prom}");
        assert!(prom.contains("driver_search_ns_count 2"), "{prom}");
        // Exposition names never contain dots.
        for line in prom.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            assert!(!name.contains('.'), "unsanitized metric name: {line}");
        }
    }

    #[test]
    fn jsonl_round_trips_hostile_names_and_values() {
        let rec = Recorder::new();
        rec.event(
            "weird.\u{1}control\"quote\\slash\tname-ключ-名前",
            &[("value", Value::str("v\u{0}null\u{1f}unit\r\n\"квота\"-引用"))],
        );
        rec.add(
            Name::from("counter.\u{2}stx-\u{7f}-обл-🚀".to_string()),
            3,
        );
        for e in rec.drain_events() {
            let line = e.to_jsonl();
            assert!(!line.contains('\n'), "JSONL lines must be single-line");
            let v = json::parse(&line).unwrap_or_else(|err| panic!("{err}: {line}"));
            // Decoding the line gives back the exact original strings.
            assert_eq!(
                v.get("name").and_then(json::Json::as_str),
                Some(e.name.as_ref())
            );
            if let Some(Value::Str(s)) = e.field("value") {
                let decoded = v
                    .get("fields")
                    .and_then(|f| f.get("value"))
                    .and_then(json::Json::as_str);
                assert_eq!(decoded, Some(s.as_ref()));
            }
        }
    }

    #[test]
    fn recorder_is_thread_safe() {
        let rec = Arc::new(Recorder::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rec = Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    rec.add("shared", 1);
                    let s = Span::open(Some(&rec), "t", &[]);
                    s.close(&[]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.counter("shared"), 400);
        assert_eq!(rec.open_spans(), 0);
        let events = rec.drain_events();
        // seq is unique and strictly increasing after the internal sort
        // order (events were pushed under one lock).
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }
}
