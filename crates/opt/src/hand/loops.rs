//! Hand-coded loop restructurers: ICM, LUR (+ full unroller), BMP.

use super::{fixpoint, HandError};
use gospel_dep::{DepGraph, DepKind};
use gospel_ir::{
    AffineExpr, LoopId, LoopTable, Opcode, Operand, OperandPos, Program, Quad, StmtId, Sym,
};

/// Invariant code motion (hand-coded twin of ICM): moves a loop-invariant
/// computation to just before its loop's header.
///
/// # Errors
///
/// Fails only on structurally invalid programs.
pub fn icm(prog: &mut Program) -> Result<usize, HandError> {
    fixpoint(prog, |prog, deps| Ok(icm_step(prog, deps)))
}

fn icm_step(prog: &mut Program, deps: &DepGraph) -> bool {
    let eq = gospel_dep::DirPattern::loop_independent();
    let loops = deps.loops().clone();
    for l in loops.iter().map(|i| i.id).collect::<Vec<_>>() {
        let lcv = Operand::Var(loops.get(l).lcv);
        let body: Vec<StmtId> = loops.body(prog, l).collect();
        for &si in &body {
            let q = prog.quad(si);
            if !matches!(
                q.op,
                Opcode::Assign | Opcode::Add | Opcode::Sub | Opcode::Mul | Opcode::Div
            ) {
                continue;
            }
            // Scalar target; operands neither array elements nor the LCV.
            if q.dst.as_var().is_none()
                || matches!(q.a, Operand::Elem { .. })
                || matches!(q.b, Operand::Elem { .. })
                || q.a == lcv
                || q.b == lcv
            {
                continue;
            }
            let blocked = body.iter().any(|&sm| {
                deps.from(sm)
                    .any(|e| e.dst == si && e.kind == DepKind::Flow)
                    || deps.from(si).any(|e| {
                        e.dst == sm && e.kind == DepKind::Output && eq.matches(&e.dirvec)
                    })
                    || deps.from(sm).any(|e| {
                        e.dst == si
                            && matches!(e.kind, DepKind::Output | DepKind::Anti)
                            && eq.matches(&e.dirvec)
                    })
                    || deps
                        .from(sm)
                        .any(|e| e.dst == si && e.kind == DepKind::Control)
            });
            if blocked {
                continue;
            }
            let head = loops.get(l).head;
            prog.move_after(si, prog.prev(head));
            return true;
        }
    }
    false
}

/// Loop unrolling (hand-coded twin of LUR): fully unrolls two-trip
/// constant-bound loops.
///
/// # Errors
///
/// Fails if the loop control variable is used as a direct scalar operand
/// (the same prototype restriction the generated optimizer's `bump` has).
pub fn lur(prog: &mut Program) -> Result<usize, HandError> {
    fixpoint(prog, |prog, deps| {
        let loops = deps.loops().clone();
        for info in loops.iter() {
            if loops.trip_count(info.id) == Some(2) {
                unroll(prog, &loops, info.id, 2)?;
                return Ok(true);
            }
        }
        Ok(false)
    })
}

/// Extension beyond the specification: fully unrolls any constant-bound
/// loop with trip count `2..=max_trip`.
///
/// # Errors
///
/// Same restriction as [`lur`].
pub fn lur_full(prog: &mut Program, max_trip: i64) -> Result<usize, HandError> {
    fixpoint(prog, move |prog, deps| {
        let loops = deps.loops().clone();
        for info in loops.iter() {
            if let Some(t) = loops.trip_count(info.id) {
                if (2..=max_trip).contains(&t) {
                    unroll(prog, &loops, info.id, t)?;
                    return Ok(true);
                }
            }
        }
        Ok(false)
    })
}

/// Replaces loop `l` (trip count `trips`, unit step) with `trips` copies
/// of its body, control variable offset per copy, preceded by
/// `lcv := init`.
fn unroll(
    prog: &mut Program,
    loops: &LoopTable,
    l: LoopId,
    trips: i64,
) -> Result<(), HandError> {
    let info = loops.get(l);
    let lcv = info.lcv;
    let head = info.head;
    let end = info.end;
    let init = info.init.clone();
    let body: Vec<StmtId> = prog.iter_between(head, end).collect();

    // Copies for iterations 2..=trips, placed before the end marker in
    // iteration order (mirrors the specification's forall+copy+bump).
    let mut anchor = prog.prev(end).unwrap_or(head);
    for k in 1..trips {
        for &s in &body {
            let c = prog.copy_after(s, Some(anchor));
            bump_stmt(prog, c, lcv, k)?;
            anchor = c;
        }
    }
    // lcv := init, then drop the loop shell.
    prog.insert_after(Some(head), Quad::assign(Operand::Var(lcv), init));
    prog.delete(head);
    prog.delete(end);
    Ok(())
}

/// Substitutes `lcv := lcv + k` in all three operands of `s`.
fn bump_stmt(prog: &mut Program, s: StmtId, lcv: Sym, k: i64) -> Result<(), HandError> {
    let repl = AffineExpr::var(lcv).plus_const(k);
    for pos in OperandPos::ALL {
        let o = prog.quad(s).operand(pos).clone();
        if k != 0 && o.as_var() == Some(lcv) {
            return Err(HandError(
                "control variable used as a direct scalar operand; \
                 unrolling is not expressible (prototype restriction)"
                    .into(),
            ));
        }
        let bumped = o.substitute_affine(lcv, &repl);
        prog.modify(s, pos, bumped);
    }
    Ok(())
}

/// Bumping (hand-coded twin of BMP): normalizes constant-bound loops to
/// start at 1.
///
/// # Errors
///
/// Same scalar-LCV restriction as [`lur`].
pub fn bmp(prog: &mut Program) -> Result<usize, HandError> {
    fixpoint(prog, |prog, deps| {
        let loops = deps.loops().clone();
        for info in loops.iter() {
            let (Some(init), Some(fin)) = (
                info.init.as_const().and_then(|v| v.as_int()),
                info.fin.as_const().and_then(|v| v.as_int()),
            ) else {
                continue;
            };
            if init == 1 {
                continue;
            }
            let body: Vec<StmtId> = prog.iter_between(info.head, info.end).collect();
            for &s in &body {
                bump_stmt(prog, s, info.lcv, init - 1)?;
            }
            prog.modify(info.head, OperandPos::B, Operand::int(fin - init + 1));
            prog.modify(info.head, OperandPos::A, Operand::int(1));
            return Ok(true);
        }
        Ok(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gospel_frontend::compile;
    use gospel_ir::DisplayProgram;

    #[test]
    fn icm_hoists_invariant_assignment() {
        let mut p = compile(
            "program p\ninteger i, k, n\nreal a(10)\nn = 10\ndo i = 1, n\nk = 7\na(i) = k\nend do\nwrite a(1)\nend",
        )
        .unwrap();
        assert_eq!(icm(&mut p).unwrap(), 1);
        let listing = DisplayProgram(&p).to_string();
        // k = 7 now precedes the loop header
        let k_line = listing.lines().position(|l| l.contains("k := 7")).unwrap();
        let do_line = listing.lines().position(|l| l.contains("do i")).unwrap();
        assert!(k_line < do_line, "{listing}");
    }

    #[test]
    fn icm_skips_variant_and_guarded_code() {
        let mut p = compile(
            "program p\ninteger i, k, n\nreal a(10)\nn = 10\ndo i = 1, n\nif (i > 5) then\nk = 7\nend if\na(i) = k\nend do\nend",
        )
        .unwrap();
        // k = 7 is control dependent on the if: not moved.
        assert_eq!(icm(&mut p).unwrap(), 0);
    }

    #[test]
    fn lur_unrolls_two_trip_loop() {
        let mut p = compile(
            "program p\ninteger i\nreal a(10)\ndo i = 1, 2\na(i) = 0.0\nend do\nwrite a(1)\nend",
        )
        .unwrap();
        assert_eq!(lur(&mut p).unwrap(), 1);
        let listing = DisplayProgram(&p).to_string();
        assert!(listing.contains("i := 1"), "{listing}");
        assert!(listing.contains("a(i) := 0.0"), "{listing}");
        assert!(listing.contains("a(i+1) := 0.0"), "{listing}");
        assert!(!listing.contains("do "), "{listing}");
    }

    #[test]
    fn lur_full_unrolls_larger_loops() {
        let mut p = compile(
            "program p\ninteger i\nreal a(10)\ndo i = 1, 4\na(i) = 0.0\nend do\nwrite a(1)\nend",
        )
        .unwrap();
        assert_eq!(lur_full(&mut p, 8).unwrap(), 1);
        let listing = DisplayProgram(&p).to_string();
        assert!(listing.contains("a(i+3) := 0.0"), "{listing}");
    }

    #[test]
    fn lur_rejects_scalar_lcv_use() {
        let mut p = compile(
            "program p\ninteger i, x\ndo i = 1, 2\nx = i\nend do\nwrite x\nend",
        )
        .unwrap();
        assert!(lur(&mut p).is_err());
    }

    #[test]
    fn bmp_normalizes_bounds() {
        let mut p = compile(
            "program p\ninteger i\nreal a(20)\ndo i = 5, 14\na(i) = 0.0\nend do\nwrite a(5)\nend",
        )
        .unwrap();
        assert_eq!(bmp(&mut p).unwrap(), 1);
        let listing = DisplayProgram(&p).to_string();
        assert!(listing.contains("do i = 1, 10"), "{listing}");
        assert!(listing.contains("a(i+4) := 0.0"), "{listing}");
    }
}
