//! Hand-coded scalar optimizations: CTP, CPP, CFO, DCE.

use super::{fixpoint, HandError};
use gospel_dep::{DepGraph, DepKind, DirPattern};
use gospel_ir::{FoldOp, Opcode, Operand, Program, Quad, StmtId, Value};

fn eq_pattern() -> DirPattern {
    DirPattern::loop_independent()
}

/// Constant propagation (the hand-coded twin of the CTP specification).
/// Returns the number of uses rewritten.
///
/// # Errors
///
/// Fails only if the program is structurally invalid.
pub fn ctp(prog: &mut Program) -> Result<usize, HandError> {
    fixpoint(prog, |prog, deps| Ok(ctp_step(prog, deps)))
}

fn ctp_step(prog: &mut Program, deps: &DepGraph) -> bool {
    let eq = eq_pattern();
    for si in prog.iter().collect::<Vec<_>>() {
        let q = prog.quad(si);
        if q.op != Opcode::Assign || !q.a.is_const() {
            continue;
        }
        let konst = q.a.clone();
        let target = q.dst.clone();
        for e in deps.from(si) {
            if e.kind != DepKind::Flow || !eq.matches(&e.dirvec) {
                continue;
            }
            // Figure 6's repl(): only replace an operand that IS the
            // defined reference (not an element operand merely using it
            // in a subscript).
            if prog.quad(e.dst).operand(e.dst_pos) != &target {
                continue;
            }
            if other_def_reaches_same_operand(prog, deps, si, e.dst, e.dst_pos) {
                continue;
            }
            prog.modify(e.dst, e.dst_pos, konst);
            return true;
        }
    }
    false
}

/// The CTP/CPP "no other definition reaching the same operand" test —
/// the paper's `dep_opr` comparison from Figure 6. Any direction counts:
/// a definition reaching around a loop back edge blocks propagation just
/// as surely as a same-iteration one (differential testing caught a
/// miscompile under the `(=)`-restricted reading; see EXPERIMENTS.md).
fn other_def_reaches_same_operand(
    prog: &Program,
    deps: &DepGraph,
    si: StmtId,
    sj: StmtId,
    pos: gospel_ir::OperandPos,
) -> bool {
    let target = prog.quad(sj).operand(pos);
    deps.to(sj).any(|e2| {
        e2.kind == DepKind::Flow
            && e2.src != si
            && prog.quad(sj).operand(e2.dst_pos) == target
    })
}

/// Copy propagation (hand-coded twin of CPP).
///
/// # Errors
///
/// Fails only if the program is structurally invalid.
pub fn cpp(prog: &mut Program) -> Result<usize, HandError> {
    fixpoint(prog, |prog, deps| Ok(cpp_step(prog, deps)))
}

fn cpp_step(prog: &mut Program, deps: &DepGraph) -> bool {
    let eq = eq_pattern();
    let order = prog.order_index();
    for si in prog.iter().collect::<Vec<_>>() {
        let q = prog.quad(si);
        if q.op != Opcode::Assign || q.a.as_var().is_none() || q.a == q.dst {
            continue;
        }
        let copied = q.a.clone();
        let target = q.dst.clone();
        for e in deps.from(si) {
            if e.kind != DepKind::Flow || !eq.matches(&e.dirvec) {
                continue;
            }
            let sj = e.dst;
            if prog.quad(sj).operand(e.dst_pos) != &target {
                continue;
            }
            if other_def_reaches_same_operand(prog, deps, si, sj, e.dst_pos) {
                continue;
            }
            // The copied variable must not be redefined on the textual path
            // from Si to Sj (the spec's mem(Sm, path(Si, Sj)) ∧ anti test).
            // Sj itself reads before it writes, so it does not count as an
            // intervening redefinition.
            let in_path =
                |s: StmtId| order[&si] <= order[&s] && order[&s] <= order[&sj] && s != sj;
            let redefined = deps.from(si).any(|e2| {
                e2.kind == DepKind::Anti && eq.matches(&e2.dirvec) && in_path(e2.dst)
            });
            if redefined {
                continue;
            }
            prog.modify(sj, e.dst_pos, copied);
            return true;
        }
    }
    false
}

/// Constant folding (hand-coded twin of CFO).
///
/// # Errors
///
/// Fails if a fold overflows (paralleling the generated optimizer, whose
/// `eval` action would fail).
pub fn cfo(prog: &mut Program) -> Result<usize, HandError> {
    fixpoint(prog, cfo_step)
}

fn cfo_step(prog: &mut Program, _deps: &DepGraph) -> Result<bool, HandError> {
    for si in prog.iter().collect::<Vec<_>>() {
        let q = prog.quad(si);
        let op = match q.op {
            Opcode::Add => FoldOp::Add,
            Opcode::Sub => FoldOp::Sub,
            Opcode::Mul => FoldOp::Mul,
            Opcode::Div => FoldOp::Div,
            Opcode::Mod => FoldOp::Mod,
            _ => continue,
        };
        let (Some(ca), Some(cb)) = (q.a.as_const(), q.b.as_const()) else {
            continue;
        };
        if matches!(op, FoldOp::Div | FoldOp::Mod) && cb == Value::Int(0) {
            continue; // the spec's `Si.opr_3 != 0` guard
        }
        let folded = Value::fold(op, ca, cb)
            .ok_or_else(|| HandError("constant fold failed (overflow?)".into()))?;
        let dst = q.dst.clone();
        prog.insert_after(Some(si), Quad::assign(dst, Operand::Const(folded)));
        prog.delete(si);
        return Ok(true);
    }
    Ok(false)
}

/// Dead code elimination (hand-coded twin of DCE).
///
/// # Errors
///
/// Fails only if the program is structurally invalid.
pub fn dce(prog: &mut Program) -> Result<usize, HandError> {
    fixpoint(prog, |prog, deps| Ok(dce_step(prog, deps)))
}

fn dce_step(prog: &mut Program, deps: &DepGraph) -> bool {
    for si in prog.iter().collect::<Vec<_>>() {
        if !matches!(
            prog.quad(si).op,
            Opcode::Assign
                | Opcode::Add
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::Div
                | Opcode::Mod
                | Opcode::Neg
        ) {
            continue;
        }
        if deps.from(si).any(|e| e.kind == DepKind::Flow) {
            continue;
        }
        prog.delete(si);
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use gospel_frontend::compile;
    use gospel_ir::DisplayProgram;

    #[test]
    fn ctp_and_spec_semantics_agree_on_blocking() {
        let mut p = compile(
            "program p\ninteger x, y, c\nx = 3\nif (c > 0) then\nx = 4\nend if\ny = x\nwrite y\nend",
        )
        .unwrap();
        assert_eq!(ctp(&mut p).unwrap(), 0);
    }

    #[test]
    fn cpp_respects_intervening_redefinition() {
        // x := y ; y := 7 ; z := x  — cannot replace x by y at z.
        let mut p = compile(
            "program p\ninteger x, y, z\ny = 1\nx = y\ny = 7\nz = x\nwrite z\nwrite y\nend",
        )
        .unwrap();
        // CPP of y=1 into x=y is possible, but x=y's copy into z=x is not.
        let n = cpp(&mut p).unwrap();
        let listing = DisplayProgram(&p).to_string();
        assert!(listing.contains("z := x"), "{listing}");
        let _ = n;
    }

    #[test]
    fn cpp_propagates_clean_copy() {
        let mut p = compile(
            "program p\ninteger x, y, z\ny = 1\nx = y\nz = x\nwrite z\nend",
        )
        .unwrap();
        cpp(&mut p).unwrap();
        let listing = DisplayProgram(&p).to_string();
        assert!(listing.contains("z := y"), "{listing}");
    }

    #[test]
    fn cfo_folds_and_replaces() {
        let mut p = compile("program p\ninteger x\nx = 2 + 3\nwrite x\nend").unwrap();
        // frontend lowers 2+3 into an Add quad
        assert_eq!(cfo(&mut p).unwrap(), 1);
        let listing = DisplayProgram(&p).to_string();
        assert!(listing.contains("x := 5"), "{listing}");
    }

    #[test]
    fn cfo_skips_division_by_zero() {
        let mut p = compile("program p\ninteger x\nx = 1 / 0\nwrite x\nend").unwrap();
        assert_eq!(cfo(&mut p).unwrap(), 0);
    }

    #[test]
    fn dce_removes_cascading_dead_code() {
        let mut p = compile(
            "program p\ninteger a, b, c\na = 1\nb = a + 1\nc = 5\nwrite c\nend",
        )
        .unwrap();
        // b is dead; once b goes, a is dead too.
        assert_eq!(dce(&mut p).unwrap(), 2);
        let listing = DisplayProgram(&p).to_string();
        assert!(!listing.contains("b :="), "{listing}");
        assert!(!listing.contains("a := 1"), "{listing}");
        assert!(listing.contains("c := 5"), "{listing}");
    }
}
