//! Hand-crafted implementations of the catalog optimizations.
//!
//! The paper's first experiment compares the optimizers GENesis generates
//! against hand-coded ones: "our optimizers found the same application
//! points and the resulting code was comparable". These baselines are
//! written directly against [`gospel_ir`] and [`gospel_dep`], mirror each
//! specification's semantics exactly (including its documented
//! conservatisms), and iterate first-match-then-reanalyze just like the
//! generated driver — so application points and final programs can be
//! compared one-to-one.
//!
//! Extensions beyond the specifications (a full unroller, a precise
//! parallelizer) are provided under their own names.

mod loops;
mod parallel;
mod scalar;

pub use loops::{bmp, icm, lur, lur_full};
pub use parallel::{crc, fus, inx, par, par_precise, parallel_loops, same_bounds};
pub use scalar::{cfo, cpp, ctp, dce};

use gospel_dep::DepGraph;
use gospel_ir::Program;

/// Error from a hand-coded optimizer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HandError(pub String);

impl std::fmt::Display for HandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "hand optimizer: {}", self.0)
    }
}

impl std::error::Error for HandError {}

pub(crate) fn analyze(prog: &Program) -> Result<DepGraph, HandError> {
    DepGraph::analyze(prog).map_err(|e| HandError(e.to_string()))
}

/// Apply `step` (which performs at most one transformation and reports
/// whether it did) until a fixpoint, re-analyzing dependences between
/// applications. Returns the number of applications.
pub(crate) fn fixpoint(
    prog: &mut Program,
    mut step: impl FnMut(&mut Program, &DepGraph) -> Result<bool, HandError>,
) -> Result<usize, HandError> {
    let mut n = 0usize;
    loop {
        let deps = analyze(prog)?;
        if !step(prog, &deps)? {
            return Ok(n);
        }
        n += 1;
        if n > 10_000 {
            return Err(HandError("did not converge".into()));
        }
    }
}
