//! Hand-coded parallelizing transformations: INX, CRC, PAR, FUS.

use super::{fixpoint, HandError};
use gospel_dep::{DepGraph, DepKind, DirElem, DirPattern};
use gospel_ir::{LoopId, Opcode, Program, Quad, StmtId};

/// Loop interchange (hand-coded twin of the paper's Figure 2 INX spec):
/// swaps a tightly nested pair when the headers are invariant and no flow
/// dependence in the inner body has a `(<,>)` direction vector.
///
/// Interchange is its own inverse, so — like the paper's interactive
/// transformations — one call applies it at (at most) the first legal
/// pair and returns 0 or 1.
///
/// # Errors
///
/// Fails only on structurally invalid programs.
pub fn inx(prog: &mut Program) -> Result<usize, HandError> {
    let deps = super::analyze(prog)?;
    Ok(usize::from(inx_step(prog, &deps)))
}

fn inx_step(prog: &mut Program, deps: &DepGraph) -> bool {
    let blocking = DirPattern::new(vec![DirElem::Lt, DirElem::Gt]);
    let loops = deps.loops().clone();
    for (l1, l2) in loops.tight_pairs(prog) {
        if deps.exists(
            DepKind::Flow,
            loops.get(l1).head,
            loops.get(l2).head,
            &DirPattern::any(),
        ) {
            continue; // header depends on the outer LCV
        }
        let body: Vec<StmtId> = loops.body(prog, l2).collect();
        let blocked = body.iter().any(|&sn| {
            deps.from(sn).any(|e| {
                e.kind == DepKind::Flow
                    && body.contains(&e.dst)
                    && blocking.matches(&e.dirvec)
            })
        });
        if blocked {
            continue;
        }
        // interchange heads and tails, exactly as the specification does
        let (h1, h2) = (loops.get(l1).head, loops.get(l2).head);
        let (e1, e2) = (loops.get(l1).end, loops.get(l2).end);
        prog.move_after(h1, Some(h2));
        let before_e2 = prog.prev(e2).expect("loop end has a predecessor");
        prog.move_after(e1, Some(before_e2));
        return true;
    }
    false
}

/// Loop circulation (hand-coded twin of CRC): left-rotates a tight triple
/// nest, making the innermost loop outermost. Like [`inx`], one call
/// applies at most one rotation (rotations cycle).
///
/// # Errors
///
/// Fails only on structurally invalid programs.
pub fn crc(prog: &mut Program) -> Result<usize, HandError> {
    let deps = super::analyze(prog)?;
    Ok(usize::from(crc_step(prog, &deps)))
}

fn crc_step(prog: &mut Program, deps: &DepGraph) -> bool {
    let backward_inner = DirPattern::new(vec![DirElem::Any, DirElem::Any, DirElem::Gt]);
    let loops = deps.loops().clone();
    let tights = loops.tight_pairs(prog);
    for &(l1, l2) in &tights {
        for &(m2, l3) in &tights {
            if m2 != l2 {
                continue;
            }
            let heads = [loops.get(l1).head, loops.get(l2).head, loops.get(l3).head];
            let header_dep = deps.exists(DepKind::Flow, heads[0], heads[1], &DirPattern::any())
                || deps.exists(DepKind::Flow, heads[0], heads[2], &DirPattern::any())
                || deps.exists(DepKind::Flow, heads[1], heads[2], &DirPattern::any());
            if header_dep {
                continue;
            }
            let body: Vec<StmtId> = loops.body(prog, l3).collect();
            let blocked = body.iter().any(|&sm| {
                deps.from(sm).any(|e| {
                    body.contains(&e.dst)
                        && matches!(e.kind, DepKind::Flow | DepKind::Anti | DepKind::Output)
                        && backward_inner.matches(&e.dirvec)
                })
            });
            if blocked {
                continue;
            }
            // rotate: (L1, L2, L3) -> (L3, L1, L2)
            let (h1, h2, h3) = (heads[0], heads[1], heads[2]);
            let _ = h2;
            let (e1, e3) = (loops.get(l1).end, loops.get(l3).end);
            prog.move_after(h1, Some(h3));
            prog.move_after(loops.get(l2).head, Some(h1));
            prog.move_after(e3, Some(e1));
            return true;
        }
    }
    false
}

const PAR_PATTERNS: [&[DirElem]; 3] = [
    &[DirElem::Lt],
    &[DirElem::Eq, DirElem::Lt],
    &[DirElem::Eq, DirElem::Eq, DirElem::Lt],
];

/// Parallelization (hand-coded twin of PAR): turns a sequential loop with
/// no loop-carried dependence into a `pardo`, using the specification's
/// per-depth carried patterns (conservative for deeply nested loops).
///
/// # Errors
///
/// Fails only on structurally invalid programs.
pub fn par(prog: &mut Program) -> Result<usize, HandError> {
    fixpoint(prog, |prog, deps| Ok(par_step(prog, deps, false)))
}

/// Extension beyond the specification: parallelizes using the precise
/// carried-at-this-loop test instead of the fixed-depth patterns.
///
/// # Errors
///
/// Fails only on structurally invalid programs.
pub fn par_precise(prog: &mut Program) -> Result<usize, HandError> {
    fixpoint(prog, |prog, deps| Ok(par_step(prog, deps, true)))
}

fn par_step(prog: &mut Program, deps: &DepGraph, precise: bool) -> bool {
    let loops = deps.loops().clone();
    for info in loops.iter() {
        if prog.quad(info.head).op != Opcode::DoHead {
            continue; // already parallel
        }
        let l = info.id;
        let depth = info.depth;
        let body: Vec<StmtId> = loops.body(prog, l).collect();
        let blocked = body.iter().any(|&sm| {
            deps.from(sm).any(|e| {
                if !body.contains(&e.dst)
                    || !matches!(e.kind, DepKind::Flow | DepKind::Anti | DepKind::Output)
                {
                    return false;
                }
                if precise {
                    e.carried_at(depth)
                } else {
                    PAR_PATTERNS
                        .iter()
                        .any(|p| DirPattern::new(p.to_vec()).matches(&e.dirvec))
                }
            })
        });
        if blocked {
            continue;
        }
        let q = prog.quad(info.head).clone();
        prog.insert_after(
            Some(info.head),
            Quad::new(Opcode::ParDo, q.dst, q.a, q.b),
        );
        prog.delete(info.head);
        return true;
    }
    false
}

/// Loop fusion (hand-coded twin of FUS): merges adjacent loops with the
/// same control variable and bounds when no dependence would be reversed
/// (the dependence analyzer's fusion-preview `(>)` vectors).
///
/// # Errors
///
/// Fails only on structurally invalid programs.
pub fn fus(prog: &mut Program) -> Result<usize, HandError> {
    fixpoint(prog, |prog, deps| Ok(fus_step(prog, deps)))
}

fn fus_step(prog: &mut Program, deps: &DepGraph) -> bool {
    let preventing = DirPattern::new(vec![DirElem::Gt]);
    let loops = deps.loops().clone();
    for (l1, l2) in loops.adjacent_pairs(prog) {
        let (i1, i2) = (loops.get(l1), loops.get(l2));
        if i1.lcv != i2.lcv || i1.init != i2.init || i1.fin != i2.fin {
            continue;
        }
        let body1: Vec<StmtId> = loops.body(prog, l1).collect();
        let body2: Vec<StmtId> = loops.body(prog, l2).collect();
        let blocked = body1.iter().any(|&sm| {
            deps.from(sm).any(|e| {
                body2.contains(&e.dst)
                    && matches!(e.kind, DepKind::Flow | DepKind::Anti | DepKind::Output)
                    && preventing.matches(&e.dirvec)
            })
        });
        if blocked {
            continue;
        }
        prog.delete(i1.end);
        prog.delete(i2.head);
        return true;
    }
    false
}

/// Which loop ids are currently parallel (`pardo`) — a helper for tests
/// and the machine-model benefit estimator.
pub fn parallel_loops(prog: &Program, deps: &DepGraph) -> Vec<LoopId> {
    deps.loops()
        .iter()
        .filter(|l| prog.quad(l.head).op == Opcode::ParDo)
        .map(|l| l.id)
        .collect()
}

/// True if the operands of two loop headers make them bound-compatible
/// (used by tests).
pub fn same_bounds(prog: &Program, h1: StmtId, h2: StmtId) -> bool {
    let (q1, q2) = (prog.quad(h1), prog.quad(h2));
    q1.a == q2.a && q1.b == q2.b && q1.dst == q2.dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use gospel_frontend::compile;
    use gospel_ir::DisplayProgram;

    #[test]
    fn inx_swaps_clean_nest() {
        let mut p = compile(
            "program p\ninteger i, j\nreal a(20,20)\ndo i = 1, 10\ndo j = 1, 10\na(i,j) = 1.0\nend do\nend do\nend",
        )
        .unwrap();
        assert_eq!(inx(&mut p).unwrap(), 1);
        let listing = DisplayProgram(&p).to_string();
        let ji = listing.lines().position(|l| l.contains("do j")).unwrap();
        let ii = listing.lines().position(|l| l.contains("do i")).unwrap();
        assert!(ji < ii, "j loop should now be outer:\n{listing}");
    }

    #[test]
    fn inx_blocked_by_lt_gt_dependence() {
        let mut p = compile(
            "program p\ninteger i, j\nreal a(20,20)\ndo i = 2, 10\ndo j = 1, 9\na(i,j) = a(i-1,j+1)\nend do\nend do\nend",
        )
        .unwrap();
        assert_eq!(inx(&mut p).unwrap(), 0);
    }

    #[test]
    fn inx_blocked_by_variant_inner_bound() {
        // inner bound uses outer LCV (triangular loop): header dependence
        let mut p = compile(
            "program p\ninteger i, j\nreal a(20,20)\ndo i = 1, 10\ndo j = 1, i\na(i,j) = 1.0\nend do\nend do\nend",
        )
        .unwrap();
        assert_eq!(inx(&mut p).unwrap(), 0);
    }

    #[test]
    fn crc_rotates_triple_nest() {
        let mut p = compile(
            "program p\ninteger i, j, k\nreal a(9,9,9)\ndo i = 1, 8\ndo j = 1, 8\ndo k = 1, 8\na(i,j,k) = 1.0\nend do\nend do\nend do\nend",
        )
        .unwrap();
        assert_eq!(crc(&mut p).unwrap(), 1);
        let listing = DisplayProgram(&p).to_string();
        let ki = listing.lines().position(|l| l.contains("do k")).unwrap();
        let ii = listing.lines().position(|l| l.contains("do i")).unwrap();
        let ji = listing.lines().position(|l| l.contains("do j")).unwrap();
        assert!(ki < ii && ii < ji, "want k,i,j order:\n{listing}");
        gospel_ir::validate(&p).unwrap();
    }

    #[test]
    fn par_marks_independent_loop() {
        let mut p = compile(
            "program p\ninteger i\nreal a(100)\ndo i = 1, 100\na(i) = 1.0\nend do\nend",
        )
        .unwrap();
        assert_eq!(par(&mut p).unwrap(), 1);
        let listing = DisplayProgram(&p).to_string();
        assert!(listing.contains("pardo i"), "{listing}");
    }

    #[test]
    fn par_blocked_by_recurrence() {
        let mut p = compile(
            "program p\ninteger i\nreal a(100)\ndo i = 2, 100\na(i) = a(i-1)\nend do\nend",
        )
        .unwrap();
        assert_eq!(par(&mut p).unwrap(), 0);
    }

    #[test]
    fn par_blocked_by_scalar_accumulator() {
        let mut p = compile(
            "program p\ninteger i\nreal s, a(100)\ns = 0.0\ndo i = 1, 100\ns = s + a(i)\nend do\nwrite s\nend",
        )
        .unwrap();
        assert_eq!(par(&mut p).unwrap(), 0);
    }

    #[test]
    fn fus_merges_conformable_loops() {
        let mut p = compile(
            "program p\ninteger i\nreal a(100), b(100)\ndo i = 1, 100\na(i) = 1.0\nend do\ndo i = 1, 100\nb(i) = a(i)\nend do\nend",
        )
        .unwrap();
        assert_eq!(fus(&mut p).unwrap(), 1);
        let listing = DisplayProgram(&p).to_string();
        assert_eq!(listing.matches("do i").count(), 1, "{listing}");
        gospel_ir::validate(&p).unwrap();
    }

    #[test]
    fn fus_blocked_by_forward_reference() {
        let mut p = compile(
            "program p\ninteger i\nreal a(200), b(200)\ndo i = 1, 100\na(i) = 1.0\nend do\ndo i = 1, 100\nb(i) = a(i+1)\nend do\nend",
        )
        .unwrap();
        assert_eq!(fus(&mut p).unwrap(), 0);
    }

    #[test]
    fn fus_blocked_by_different_bounds() {
        let mut p = compile(
            "program p\ninteger i\nreal a(100), b(100)\ndo i = 1, 100\na(i) = 1.0\nend do\ndo i = 1, 50\nb(i) = 2.0\nend do\nend",
        )
        .unwrap();
        assert_eq!(fus(&mut p).unwrap(), 0);
    }
}
