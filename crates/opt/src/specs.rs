//! The GOSpeL sources of the catalog, in the paper's acronyms.
//!
//! CTP and INX follow the paper's Figures 1 and 2; the others were written
//! in the same style (the paper states all were specified but prints only
//! these two). Deviations and prototype restrictions are documented per
//! specification and in DESIGN.md.

/// Constant Propagation — the paper's Figure 1.
pub const CTP: &str = r#"
OPTIMIZATION CTP
TYPE
  Stmt: Si, Sj, Sl;
PRECOND
  Code_Pattern
    /* find a constant definition */
    any Si: Si.opc == assign AND type(Si.opr_2) == const;
  Depend
    /* a use of Si's variable ... */
    any (Sj, pos): flow_dep(Si, Sj, (=))
                   AND operand(Sj, pos) == Si.opr_1;
    /* ... with no other definition reaching the same operand. The vector
       is omitted deliberately: a definition reaching around a loop back
       edge (a carried edge) blocks propagation just as surely as a
       same-iteration one — the paper's prose says "no other definitions
       that reach the use". */
    no (Sl, pos2): flow_dep(Sl, Sj) AND (Sl != Si)
                   AND operand(Sj, pos2) == operand(Sj, pos);
ACTION
  /* change the use to the constant */
  modify(operand(Sj, pos), Si.opr_2);
END
"#;

/// Copy Propagation. The "copy still valid" condition is expressed through
/// an anti-dependence on the path between the copy and the use: any
/// redefinition of the copied variable in between kills the propagation.
pub const CPP: &str = r#"
OPTIMIZATION CPP
TYPE
  Stmt: Si, Sj, Sl, Sm;
PRECOND
  Code_Pattern
    /* find a proper copy x := y (a self-copy would re-match forever) */
    any Si: Si.opc == assign AND type(Si.opr_2) == var
            AND Si.opr_1 != Si.opr_2;
  Depend
    any (Sj, pos): flow_dep(Si, Sj, (=))
                   AND operand(Sj, pos) == Si.opr_1;
    no (Sl, pos2): flow_dep(Sl, Sj) AND (Sl != Si)
                   AND operand(Sj, pos2) == operand(Sj, pos);
    /* the copied variable must not be redefined between Si and Sj
       (Sj itself reads before it writes, so it does not count) */
    no Sm: mem(Sm, path(Si, Sj)), anti_dep(Si, Sm, (=)) AND (Sm != Sj);
ACTION
  modify(operand(Sj, pos), Si.opr_2);
END
"#;

/// Constant Folding (referenced by the §4 enablement counts as CFO).
/// Uses the `eval` operand extension; the folded statement is replaced by
/// a fresh assignment (the five primitives cannot change an opcode).
pub const CFO: &str = r#"
OPTIMIZATION CFO
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: (Si.opc == add OR Si.opc == sub OR Si.opc == mul
             OR ((Si.opc == div OR Si.opc == mod) AND Si.opr_3 != 0))
            AND type(Si.opr_2) == const AND type(Si.opr_3) == const;
ACTION
  add(Si, [assign, Si.opr_1, eval(Si.opr_2, Si.opc, Si.opr_3)], Snew);
  delete(Si);
END
"#;

/// Dead Code Elimination: a computation whose value never flows anywhere.
pub const DCE: &str = r#"
OPTIMIZATION DCE
TYPE
  Stmt: Si, Sj;
PRECOND
  Code_Pattern
    any Si: Si.opc == assign OR Si.opc == add OR Si.opc == sub
            OR Si.opc == mul OR Si.opc == div OR Si.opc == mod
            OR Si.opc == neg;
  Depend
    no Sj: flow_dep(Si, Sj);
ACTION
  delete(Si);
END
"#;

/// Invariant Code Motion: a scalar computation inside a loop whose
/// operands come from outside the loop (and do not involve the loop's
/// control variable or array elements), whose target is written nowhere
/// else in the iteration, that is not guarded by a conditional, and whose
/// value is not used earlier in the iteration. Moved to just before the
/// loop header. The loop-independent `(=)` vectors matter: the carried
/// anti/output self-dependences every loop-resident definition has do not
/// block invariance.
pub const ICM: &str = r#"
OPTIMIZATION ICM
TYPE
  Stmt: Si, Sm, Sn, Sa, Sc;
  Loop: L;
PRECOND
  Code_Pattern
    any L;
  Depend
    any Si: mem(Si, L),
        (Si.opc == assign OR Si.opc == add OR Si.opc == sub
         OR Si.opc == mul OR Si.opc == div)
        AND type(Si.opr_1) == var
        AND type(Si.opr_2) != elem AND type(Si.opr_3) != elem
        AND Si.opr_2 != L.lcv AND Si.opr_3 != L.lcv;
    /* operands computed outside the loop */
    no Sm: mem(Sm, L), flow_dep(Sm, Si);
    /* sole definition of its target within an iteration */
    no Sn: mem(Sn, L), out_dep(Si, Sn, (=)) OR out_dep(Sn, Si, (=));
    /* no use of the target earlier in the iteration */
    no Sa: mem(Sa, L), anti_dep(Sa, Si, (=));
    /* executed on every iteration (only the loop governs it) */
    no Sc: mem(Sc, L), ctrl_dep(Sc, Si);
ACTION
  move(Si, L.head.prev);
END
"#;

/// Loop Interchanging — the paper's Figure 2.
pub const INX: &str = r#"
OPTIMIZATION INX MODE interactive
TYPE
  Stmt: Sm, Sn;
  Tight_Loops: (L1, L2);
PRECOND
  Code_Pattern
    /* find two tightly nested loops */
    any (L1, L2);
  Depend
    /* ensure invariant loop headers */
    no: flow_dep(L1.head, L2.head);
    /* no pair of statements with a flow dependence and a (<,>) vector */
    no Sm, Sn: mem(Sm, L2) AND mem(Sn, L2), flow_dep(Sn, Sm, (<,>));
ACTION
  /* interchange heads and tails */
  move(L1.head, L2.head);
  move(L1.end, L2.end.prev);
END
"#;

/// Loop Circulation: left-rotate a tight triple nest so the innermost
/// loop becomes outermost — legal when no dependence is carried backward
/// at the innermost level and the headers are invariant.
pub const CRC: &str = r#"
OPTIMIZATION CRC MODE interactive
TYPE
  Stmt: Sm, Sn;
  Tight_Loops: (L1, L2), (L2, L3);
PRECOND
  Code_Pattern
    any (L1, L2);
    any (L2, L3);
  Depend
    no: flow_dep(L1.head, L2.head);
    no: flow_dep(L1.head, L3.head);
    no: flow_dep(L2.head, L3.head);
    no Sm, Sn: mem(Sm, L3) AND mem(Sn, L3),
        flow_dep(Sm, Sn, (*,*,>)) OR anti_dep(Sm, Sn, (*,*,>))
        OR out_dep(Sm, Sn, (*,*,>));
ACTION
  move(L1.head, L3.head);
  move(L2.head, L1.head);
  move(L3.end, L1.end);
END
"#;

/// Bumping: normalize a constant-bound loop to start at 1, adjusting
/// every occurrence of the control variable. Restricted (as the paper's
/// prototype was) to loops whose LCV appears only in subscripts.
pub const BMP: &str = r#"
OPTIMIZATION BMP
TYPE
  Stmt: S2;
  Loop: L;
PRECOND
  Code_Pattern
    any L: type(L.init) == const AND type(L.final) == const AND L.init != 1;
ACTION
  forall S in L do
    modify(S.opr_1, bump(S.opr_1, L.lcv, eval(L.init, sub, 1)));
    modify(S.opr_2, bump(S.opr_2, L.lcv, eval(L.init, sub, 1)));
    modify(S.opr_3, bump(S.opr_3, L.lcv, eval(L.init, sub, 1)));
  end;
  modify(L.final, eval(eval(L.final, sub, L.init), add, 1));
  modify(L.init, 1);
END
"#;

/// Parallelization: a sequential loop with no loop-carried dependence
/// among its body statements becomes a parallel `pardo`. The carried-at
/// patterns are spelled out per nesting depth (up to three), the
/// conservative direction.
pub const PAR: &str = r#"
OPTIMIZATION PAR MODE interactive
TYPE
  Stmt: Sm, Sn;
  Loop: L;
PRECOND
  Code_Pattern
    any L: L.head.opc == do;
  Depend
    no Sm, Sn: mem(Sm, L) AND mem(Sn, L),
        flow_dep(Sm, Sn, (<)) OR flow_dep(Sm, Sn, (=,<)) OR flow_dep(Sm, Sn, (=,=,<))
        OR anti_dep(Sm, Sn, (<)) OR anti_dep(Sm, Sn, (=,<)) OR anti_dep(Sm, Sn, (=,=,<))
        OR out_dep(Sm, Sn, (<)) OR out_dep(Sm, Sn, (=,<)) OR out_dep(Sm, Sn, (=,=,<));
ACTION
  add(L.head, [pardo, L.lcv, L.init, L.final], Sp);
  delete(L.head);
END
"#;

/// Loop Unrolling: full unroll of a two-trip constant-bound loop (the
/// paper: "constant bounds are needed to unroll the loop"; the prototype's
/// unit-step restriction limits the expressible factor). The upper bound
/// is tested first — the cheaper variant found by the §4 specification
/// experiment.
pub const LUR: &str = r#"
OPTIMIZATION LUR
TYPE
  Stmt: S2;
  Loop: L;
PRECOND
  Code_Pattern
    any L: type(L.final) == const AND type(L.init) == const
           AND L.final == eval(L.init, add, 1);
ACTION
  forall S in L do
    copy(S, L.end.prev, S2);
    modify(S2.opr_1, bump(S2.opr_1, L.lcv, 1));
    modify(S2.opr_2, bump(S2.opr_2, L.lcv, 1));
    modify(S2.opr_3, bump(S2.opr_3, L.lcv, 1));
  end;
  add(L.head, [assign, L.lcv, L.init], Sinit);
  delete(L);
END
"#;

/// The lower-bound-first LUR variant: identical semantics, different
/// check order — the §4 experiment measures the extra precondition checks
/// it performs (upper bounds are more often variable than lower bounds).
pub const LUR_LOWER_FIRST: &str = r#"
OPTIMIZATION LUR_LF
TYPE
  Stmt: S2;
  Loop: L;
PRECOND
  Code_Pattern
    any L: type(L.init) == const AND type(L.final) == const
           AND L.final == eval(L.init, add, 1);
ACTION
  forall S in L do
    copy(S, L.end.prev, S2);
    modify(S2.opr_1, bump(S2.opr_1, L.lcv, 1));
    modify(S2.opr_2, bump(S2.opr_2, L.lcv, 1));
    modify(S2.opr_3, bump(S2.opr_3, L.lcv, 1));
  end;
  add(L.head, [assign, L.lcv, L.init], Sinit);
  delete(L);
END
"#;

/// Applicability-only LUR pattern: constant bounds, at least two trips.
/// Used by the enablement experiment to count "CTP enabled LUR" points the
/// way the paper does (constant bounds make a loop unrollable), without
/// committing to an unroll factor.
pub const LUR_APPLICABLE: &str = r#"
OPTIMIZATION LUR_OK
TYPE
  Stmt: S2;
  Loop: L;
PRECOND
  Code_Pattern
    any L: type(L.final) == const AND type(L.init) == const
           AND L.final >= eval(L.init, add, 1);
ACTION
  modify(L.init, L.init);
END
"#;

/// Loop Fusion: adjacent loops with the same control variable and bounds,
/// with no dependence that fusion would reverse (the dependence analyzer
/// reports cross-loop directions for fusable adjacent pairs as if the
/// loops were already fused; `(>)` is the fusion-preventing direction).
pub const FUS: &str = r#"
OPTIMIZATION FUS
TYPE
  Stmt: Sm, Sn;
  Adjacent_Loops: (L1, L2);
PRECOND
  Code_Pattern
    any (L1, L2): L1.lcv == L2.lcv AND L1.init == L2.init
                  AND L1.final == L2.final;
  Depend
    no Sm, Sn: mem(Sm, L1) AND mem(Sn, L2),
        flow_dep(Sm, Sn, (>)) OR anti_dep(Sm, Sn, (>)) OR out_dep(Sm, Sn, (>));
ACTION
  delete(L1.end);
  delete(L2.head);
END
"#;

/// The catalog: (acronym, GOSpeL source), in the paper's listing order.
pub const ALL: &[(&str, &str)] = &[
    ("CPP", CPP),
    ("CTP", CTP),
    ("DCE", DCE),
    ("ICM", ICM),
    ("INX", INX),
    ("CRC", CRC),
    ("BMP", BMP),
    ("PAR", PAR),
    ("LUR", LUR),
    ("FUS", FUS),
    ("CFO", CFO),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_parses_validates_and_generates() {
        for (name, src) in ALL {
            let opt = crate::compile_spec(src)
                .unwrap_or_else(|e| panic!("{name} failed to generate: {e}"));
            assert!(opt.name.eq_ignore_ascii_case(name), "{name} vs {}", opt.name);
        }
    }

    #[test]
    fn variants_generate_too() {
        for src in [LUR_LOWER_FIRST, LUR_APPLICABLE] {
            crate::compile_spec(src).unwrap();
        }
    }

    #[test]
    fn specs_roundtrip_through_pretty_printer() {
        for (name, src) in ALL {
            let ast1 = gospel_lang::parse_spec(src).unwrap();
            let printed = gospel_lang::pretty(&ast1);
            let ast2 = gospel_lang::parse_spec(&printed)
                .unwrap_or_else(|e| panic!("{name} reprint failed: {e}\n{printed}"));
            assert_eq!(ast1, ast2, "{name}");
        }
    }

    #[test]
    fn modes_follow_the_paper() {
        use gospel_lang::ast::Mode;
        // Parallelizing transformations are interactive, traditional ones
        // automatic (paper §1).
        for (name, mode) in [
            ("CTP", Mode::Auto),
            ("DCE", Mode::Auto),
            ("INX", Mode::Interactive),
            ("PAR", Mode::Interactive),
            ("CRC", Mode::Interactive),
        ] {
            assert_eq!(crate::by_name(name).mode, mode, "{name}");
        }
    }
}

/// A *peephole* optimizer — the paper's related-work section notes
/// "GENesis could also be used to produce peephole optimizers": this one
/// needs no dependence information at all, removing redundant self-copies
/// by pure pattern matching.
pub const PEEPHOLE_REDUN: &str = r#"
OPTIMIZATION REDUN
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: Si.opc == assign AND Si.opr_1 == Si.opr_2;
ACTION
  delete(Si);
END
"#;

#[cfg(test)]
mod peephole_tests {
    use genesis::{ApplyMode, Driver};

    #[test]
    fn peephole_optimizer_needs_no_dependences() {
        let opt = crate::compile_spec(super::PEEPHOLE_REDUN).unwrap();
        assert!(opt.depends.is_empty());
        let mut p = gospel_frontend::compile(
            "program p\ninteger x, y\nx = 1\nx = x\ny = x\ny = y\nwrite y\nend",
        )
        .unwrap();
        let report = Driver::new(&opt).apply(&mut p, ApplyMode::AllPoints).unwrap();
        assert_eq!(report.applications, 2);
        assert_eq!(report.cost.dep_checks, 0, "peephole uses no dependence checks");
        let listing = gospel_ir::DisplayProgram(&p).to_string();
        assert!(!listing.contains("x := x"), "{listing}");
        assert!(!listing.contains("y := y"), "{listing}");
    }
}
