//! Optimization-interaction measurements: the machinery behind the §4
//! enablement and ordering experiments ("CTP was found to create
//! opportunities to apply a number of other optimizations"; "applying FUS
//! disabled INX and applying LUR disabled FUS").

use genesis::{ApplyMode, CompiledOptimizer, Driver, RunError};
use gospel_ir::Program;
use gospel_lang::ast::Mode;
use std::collections::BTreeMap;

/// The natural application mode of an optimizer when the experiments
/// drive it without a user: optimizations whose actions invalidate their
/// own precondition run to a fixpoint at all points; pure-`move`
/// restructurings (loop interchange, circulation) leave their pattern
/// matchable — applying them repeatedly would just toggle the program —
/// so they apply once, as the paper's interactive interface would.
pub fn natural_mode(opt: &CompiledOptimizer) -> ApplyMode {
    use gospel_lang::ast::Action;
    let moves_only = !opt.actions.is_empty()
        && opt.actions.iter().all(|a| matches!(a, Action::Move(_, _)));
    if moves_only && opt.mode == Mode::Interactive {
        ApplyMode::FirstPoint
    } else {
        ApplyMode::AllPoints
    }
}

/// How many times `opt` applies to (a scratch copy of) `prog` when run to
/// a fixpoint — the paper's "application points".
///
/// # Errors
///
/// Propagates driver failures.
pub fn applications(prog: &Program, opt: &CompiledOptimizer) -> Result<usize, RunError> {
    let mut scratch = prog.clone();
    let mut d = Driver::new(opt);
    Ok(d.apply(&mut scratch, natural_mode(opt))?.applications)
}

/// How many application points `opt` *matches* right now, without
/// transforming (for applicability-style patterns such as
/// [`crate::specs::LUR_APPLICABLE`]).
///
/// # Errors
///
/// Propagates analysis failures.
pub fn match_count(prog: &Program, opt: &CompiledOptimizer) -> Result<usize, RunError> {
    Ok(Driver::new(opt).matches(prog)?.bindings.len())
}

/// The enablement relation between one optimization and another.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Enablement {
    /// Applications of the enabler itself.
    pub first_applications: usize,
    /// The enabled optimization's points before the enabler ran.
    pub before: usize,
    /// … and after.
    pub after: usize,
}

impl Enablement {
    /// Newly created opportunities (clamped at zero).
    pub fn enabled(&self) -> usize {
        self.after.saturating_sub(self.before)
    }

    /// Destroyed opportunities (clamped at zero).
    pub fn disabled(&self) -> usize {
        self.before.saturating_sub(self.after)
    }
}

/// Measures whether applying `first` (to a fixpoint) creates or destroys
/// application points of `then`. `count_by_match` counts `then`'s points
/// with [`match_count`] instead of [`applications`] (needed for
/// applicability-only patterns).
///
/// # Errors
///
/// Propagates driver failures.
pub fn enablement(
    prog: &Program,
    first: &CompiledOptimizer,
    then: &CompiledOptimizer,
    count_by_match: bool,
) -> Result<Enablement, RunError> {
    let count = |p: &Program| -> Result<usize, RunError> {
        if count_by_match {
            match_count(p, then)
        } else {
            applications(p, then)
        }
    };
    let before = count(prog)?;
    let mut transformed = prog.clone();
    let mut d = Driver::new(first);
    let first_applications = d
        .apply(&mut transformed, natural_mode(first))?
        .applications;
    let after = count(&transformed)?;
    Ok(Enablement {
        first_applications,
        before,
        after,
    })
}

/// Applies a sequence of optimizers in order (each to its fixpoint) and
/// returns the per-step application counts plus the final program — the
/// §4 ordering experiment's primitive.
///
/// # Errors
///
/// Propagates driver failures.
pub fn run_order(
    prog: &Program,
    order: &[&CompiledOptimizer],
) -> Result<(Vec<usize>, Program), RunError> {
    let mut p = prog.clone();
    let mut counts = Vec::new();
    for opt in order {
        let mut d = Driver::new(opt);
        counts.push(d.apply(&mut p, natural_mode(opt))?.applications);
    }
    Ok((counts, p))
}

/// Runs every permutation of the given optimizers and reports, per order,
/// the application counts and whether the final programs differ — the
/// "different orderings produced different optimized programs" result.
///
/// # Errors
///
/// Propagates driver failures.
pub fn all_orders(
    prog: &Program,
    opts: &[&CompiledOptimizer],
) -> Result<Vec<OrderOutcome>, RunError> {
    let n = opts.len();
    let mut idx: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    permute(&mut idx, 0, &mut |perm| {
        let order: Vec<&CompiledOptimizer> = perm.iter().map(|&i| opts[i]).collect();
        let names: Vec<String> = order.iter().map(|o| o.name.clone()).collect();
        match run_order(prog, &order) {
            Ok((counts, program)) => {
                out.push(Ok(OrderOutcome {
                    names,
                    counts,
                    program,
                }));
            }
            Err(e) => out.push(Err(e)),
        }
    });
    out.into_iter().collect()
}

fn permute(idx: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == idx.len() {
        f(idx);
        return;
    }
    for i in k..idx.len() {
        idx.swap(k, i);
        permute(idx, k + 1, f);
        idx.swap(k, i);
    }
}

/// The outcome of one ordering.
#[derive(Clone, Debug)]
pub struct OrderOutcome {
    /// Optimizer names in application order.
    pub names: Vec<String>,
    /// Applications per optimizer.
    pub counts: Vec<usize>,
    /// The final program.
    pub program: Program,
}

/// Groups ordering outcomes into classes of structurally equal final
/// programs; more than one class means order matters.
pub fn distinct_results(outcomes: &[OrderOutcome]) -> Vec<Vec<&OrderOutcome>> {
    let mut classes: Vec<Vec<&OrderOutcome>> = Vec::new();
    for o in outcomes {
        match classes
            .iter_mut()
            .find(|c| c[0].program.structurally_eq(&o.program))
        {
            Some(c) => c.push(o),
            None => classes.push(vec![o]),
        }
    }
    classes
}

/// Per-optimization application counts over a whole program suite.
pub type CountTable = BTreeMap<String, usize>;

/// Counts applications of every catalog optimizer on `prog`.
///
/// # Errors
///
/// Propagates driver failures.
pub fn count_all(prog: &Program, opts: &[CompiledOptimizer]) -> Result<CountTable, RunError> {
    let mut out = CountTable::new();
    for o in opts {
        out.insert(o.name.clone(), applications(prog, o)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::by_name;
    use gospel_frontend::compile;

    #[test]
    fn ctp_enables_dce() {
        // After propagating x into y = x, x's definition becomes dead.
        let prog = compile(
            "program p\ninteger x, y\nx = 3\ny = x\nwrite y\nend",
        )
        .unwrap();
        let e = enablement(&prog, &by_name("CTP"), &by_name("DCE"), false).unwrap();
        assert_eq!(e.before, 0);
        assert!(e.after > 0, "{e:?}");
        assert!(e.enabled() > 0);
    }

    #[test]
    fn ctp_enables_cfo() {
        // x = 3 ; y = x + 4  — after CTP the add has two constant operands.
        let prog = compile(
            "program p\ninteger x, y\nx = 3\ny = x + 4\nwrite y\nend",
        )
        .unwrap();
        let e = enablement(&prog, &by_name("CTP"), &by_name("CFO"), false).unwrap();
        assert_eq!(e.before, 0);
        assert!(e.enabled() > 0, "{e:?}");
    }

    #[test]
    fn ordering_can_change_results() {
        // LUR destroys the loop FUS would fuse: LUR-first and FUS-first
        // final programs differ.
        let prog = compile(
            "program p\ninteger i\nreal a(10), b(10)\ndo i = 1, 2\na(i) = 1.0\nend do\ndo i = 1, 2\nb(i) = a(i)\nend do\nwrite b(1)\nend",
        )
        .unwrap();
        let lur = by_name("LUR");
        let fus = by_name("FUS");
        let outcomes = all_orders(&prog, &[&lur, &fus]).unwrap();
        assert_eq!(outcomes.len(), 2);
        let classes = distinct_results(&outcomes);
        assert_eq!(classes.len(), 2, "orders should differ");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::by_name;
    use gospel_frontend::compile;

    #[test]
    fn all_orders_enumerates_every_permutation() {
        let prog = compile("program p\ninteger x\nx = 1\nwrite x\nend").unwrap();
        let a = by_name("CTP");
        let b = by_name("DCE");
        let c = by_name("CFO");
        let outcomes = all_orders(&prog, &[&a, &b, &c]).unwrap();
        assert_eq!(outcomes.len(), 6);
        let mut names: Vec<String> = outcomes.iter().map(|o| o.names.join(",")).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6, "duplicate orders: {names:?}");
    }

    #[test]
    fn distinct_results_groups_equal_programs() {
        let prog = compile("program p\ninteger x\nx = 1\nwrite x\nend").unwrap();
        // CTP and CFO both fixpoint to the same tiny program here; every
        // order lands in one equivalence class.
        let a = by_name("CTP");
        let b = by_name("CFO");
        let outcomes = all_orders(&prog, &[&a, &b]).unwrap();
        let classes = distinct_results(&outcomes);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].len(), 2);
    }

    #[test]
    fn enablement_counts_are_consistent() {
        let prog = compile(
            "program p\ninteger x, y\nx = 3\ny = x + 4\nwrite y\nend",
        )
        .unwrap();
        let e = enablement(&prog, &by_name("CTP"), &by_name("CFO"), false).unwrap();
        assert_eq!(e.before + e.enabled() - e.disabled(), e.after);
        assert!(e.first_applications > 0);
    }

    #[test]
    fn natural_mode_classification() {
        use genesis::ApplyMode;
        assert_eq!(natural_mode(&by_name("CTP")), ApplyMode::AllPoints);
        assert_eq!(natural_mode(&by_name("PAR")), ApplyMode::AllPoints); // convergent
        assert_eq!(natural_mode(&by_name("FUS")), ApplyMode::AllPoints);
        assert_eq!(natural_mode(&by_name("INX")), ApplyMode::FirstPoint); // pure moves
        assert_eq!(natural_mode(&by_name("CRC")), ApplyMode::FirstPoint);
    }
}
