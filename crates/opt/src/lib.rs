//! # gospel-opts — the paper's optimization catalog
//!
//! GOSpeL specifications for the ten optimizations the paper generated
//! optimizers for — Copy Propagation (CPP), Constant Propagation (CTP),
//! Dead Code Elimination (DCE), Invariant Code Motion (ICM), Loop
//! Interchanging (INX), Loop Circulation (CRC), Bumping (BMP),
//! Parallelization (PAR), Loop Unrolling (LUR) and Loop Fusion (FUS) —
//! plus Constant Folding (CFO), which the §4 enablement experiment
//! references.
//!
//! Each optimization also has a **hand-coded baseline** implementation
//! ([`hand`]) against the same IR and dependence analysis, mirroring the
//! paper's "compare the quality of code produced by our optimizers with
//! that produced by hand-crafted optimizers" experiment, and an
//! [`interaction`] module that measures how applying one optimization
//! creates or destroys application points of another (the paper's
//! enablement/ordering experiments).
//!
//! ```
//! use gospel_opts::catalog;
//!
//! let opts = catalog().unwrap();
//! assert_eq!(opts.len(), 11);
//! let ctp = opts.iter().find(|o| o.name == "CTP").unwrap();
//! assert_eq!(ctp.depends.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hand;
pub mod interaction;
pub mod specs;

use genesis::{generate, CompiledOptimizer, GenerateError};
use gospel_lang::parse_validated;

/// Generates the full catalog of eleven optimizers from their GOSpeL
/// specifications.
///
/// # Errors
///
/// Returns the first generation error (none in a released build — the
/// specifications are tested).
pub fn catalog() -> Result<Vec<CompiledOptimizer>, GenerateError> {
    specs::ALL
        .iter()
        .map(|(_, src)| compile_spec(src))
        .collect()
}

/// Compiles one GOSpeL source into an optimizer.
///
/// # Errors
///
/// Propagates specification and generation errors.
pub fn compile_spec(src: &str) -> Result<CompiledOptimizer, GenerateError> {
    let (spec, info) = parse_validated(src).map_err(GenerateError::Spec)?;
    generate(spec, info)
}

/// Convenience: the compiled optimizer for a catalog name (`"CTP"`…).
///
/// # Panics
///
/// Panics if `name` is not in the catalog — the catalog names are the
/// eleven fixed acronyms.
pub fn by_name(name: &str) -> CompiledOptimizer {
    let (_, src) = specs::ALL
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .unwrap_or_else(|| panic!("`{name}` is not a catalog optimization"));
    compile_spec(src).expect("catalog specifications generate")
}
