//! # gospel-workloads — the experiment programs
//!
//! The paper evaluates on "programs found in the HOMPACK test suite and in
//! a numerical analysis test suite … a total of ten programs". This crate
//! provides a ten-program MiniFor suite modelled on those sources —
//! homotopy-method kernels plus classic numerical-analysis routines (FFT,
//! Newton's method, Gaussian elimination, …) — shaped to reproduce the
//! paper's qualitative findings: constants feed loop bounds (CTP points
//! everywhere, enabling DCE/CFO/LUR), array accesses stay high-level (no
//! ICM points in the suite), copies occur in exactly two programs, loop
//! fusion applies in exactly one, and one program is the three-way
//! FUS/INX/LUR interaction study of §4.
//!
//! A seeded random-program generator supports property tests and scaling
//! benches.
//!
//! ```
//! let suite = gospel_workloads::suite();
//! assert_eq!(suite.len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod programs;

use gospel_ir::Program;

/// Compiles the whole ten-program suite.
///
/// # Panics
///
/// Panics if a bundled source fails to compile — prevented by tests.
pub fn suite() -> Vec<(&'static str, Program)> {
    programs::SOURCES
        .iter()
        .map(|(name, src)| {
            (
                *name,
                gospel_frontend::compile(src)
                    .unwrap_or_else(|e| panic!("workload `{name}` failed to compile: {e}")),
            )
        })
        .collect()
}

/// Compiles one suite program by name.
///
/// # Panics
///
/// Panics on unknown names.
pub fn program(name: &str) -> Program {
    let (_, src) = programs::SOURCES
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("no workload named `{name}`"));
    gospel_frontend::compile(src).expect("bundled workloads compile")
}
