//! The ten-program suite (MiniFor sources).
//!
//! Shaped after the paper's description of its workloads: HOMPACK-style
//! homotopy-method kernels (`fixpnf`, `polsys`, `track`) and
//! numerical-analysis routines (`fft`, `newton`, `bisect`, `gauss`,
//! `matmul`, `trapz`), plus `interact`, the three-way FUS/INX/LUR
//! interaction study of §4.

/// Radix-2 FFT-like butterfly sweep (numerical-analysis suite).
pub const FFT: &str = r#"
program fft
  integer i, k, n, half, step
  real re(64), im(64), wr, wi, tr, ti
  n = 64
  half = n / 2
  step = 2
  do i = 1, n
    re(i) = sin(i)
    im(i) = 0.0
  end do
  wr = cos(step)
  wi = sin(step)
  do k = 1, half
    tr = wr * re(k + half) - wi * im(k + half)
    ti = wr * im(k + half) + wi * re(k + half)
    re(k + half) = re(k) - tr
    im(k + half) = im(k) - ti
    re(k) = re(k) + tr
    im(k) = im(k) + ti
  end do
  write re(1)
  write im(1)
end
"#;

/// Newton's method for sqrt(2) (contains propagatable copies — one of the
/// two CPP programs).
pub const NEWTON: &str = r#"
program newton
  integer it, maxit
  real x, xold, fx, dfx, tol
  maxit = 20
  tol = 0.000001
  x = 1.0
  do it = 1, maxit
    xold = x
    fx = xold * xold - 2.0
    dfx = 2.0 * xold
    x = xold - fx / dfx
    if (abs(x - xold) < tol) then
      write x
    end if
  end do
  write x
end
"#;

/// Bisection on f(x) = x^3 - x - 2.
pub const BISECT: &str = r#"
program bisect
  integer it, maxit
  real lo, hi, mid, flo, fmid
  maxit = 40
  lo = 1.0
  hi = 2.0
  flo = lo * lo * lo - lo - 2.0
  do it = 1, maxit
    mid = (lo + hi) / 2.0
    fmid = mid * mid * mid - mid - 2.0
    if (fmid * flo > 0.0) then
      lo = mid
      flo = fmid
    else
      hi = mid
    end if
  end do
  write mid
end
"#;

/// Gaussian elimination (triangular nest: interchange blocked by variant
/// inner bounds; forward elimination carries dependences).
pub const GAUSS: &str = r#"
program gauss
  integer i, j, k, n
  real a(16,17), factor
  n = 16
  do i = 1, n
    do j = 1, n
      a(i,j) = 1.0 / (i + j)
    end do
    a(i, n + 1) = 1.0
  end do
  do k = 1, n
    do i = k + 1, n
      factor = a(i,k) / a(k,k)
      do j = k, n
        a(i,j) = a(i,j) - factor * a(k,j)
      end do
      a(i, n + 1) = a(i, n + 1) - factor * a(k, n + 1)
    end do
  end do
  write a(1,17)
end
"#;

/// Classic dense matrix multiply: the clean interchangeable/circulatable
/// triple nest, plus a parallelizable initialization.
pub const MATMUL: &str = r#"
program matmul
  integer i, j, k, n
  real a(16,16), b(16,16), c(16,16)
  n = 16
  do i = 1, n
    do j = 1, n
      a(i,j) = i + j
      b(i,j) = i - j
      c(i,j) = 0.0
    end do
  end do
  do i = 1, n
    do j = 1, n
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
  write c(1,1)
end
"#;

/// Trapezoidal integration of sin over [0, 1] (sequential accumulation —
/// a PAR blocker by design).
pub const TRAPZ: &str = r#"
program trapz
  integer i, n
  real h, s, x, lo, hi
  n = 128
  lo = 0.0
  hi = 1.0
  h = (hi - lo) / n
  s = (sin(lo) + sin(hi)) / 2.0
  do i = 1, n - 1
    x = lo + i * h
    s = s + sin(x)
  end do
  s = s * h
  write s
end
"#;

/// HOMPACK-style fixed-point homotopy step (dense vector operations; the
/// second CPP program).
pub const FIXPNF: &str = r#"
program fixpnf
  integer i, n
  real x(32), y(32), f(32), lambda, lamold, oneml, step
  n = 32
  lambda = 0.0
  step = 0.125
  do i = 1, n
    x(i) = 0.0
    y(i) = 1.0 / i
  end do
  lamold = lambda
  lambda = lamold + step
  oneml = 1.0 - lambda
  do i = 1, n
    f(i) = lambda * y(i) + oneml * x(i)
  end do
  write f(1)
  do i = 1, n
    x(i) = x(i) + 0.5 * (f(i) - x(i))
  end do
  write x(1)
  write lambda
end
"#;

/// HOMPACK-style polynomial-system evaluation (Horner sweeps).
pub const POLSYS: &str = r#"
program polsys
  integer i, j, n, deg, degp
  real coef(8,5), x(8), p(8)
  n = 8
  deg = 4
  degp = deg + 1
  do i = 1, n
    x(i) = 1.0 / (i + 1)
    do j = 1, degp
      coef(i,j) = i + j
    end do
  end do
  write x(1)
  do i = 1, n
    p(i) = coef(i, degp)
    do j = 1, deg
      p(i) = p(i) * x(i) + coef(i, degp - j)
    end do
  end do
  write p(1)
end
"#;

/// HOMPACK-style curve-tracking predictor step (tangent + Euler predictor,
/// norm computation).
pub const TRACK: &str = r#"
program track
  integer i, n
  real z(24), tz(24), znew(24), h, nrm
  n = 24
  do i = 1, n
    z(i) = 1.0 / i
    tz(i) = z(i) * 0.5
  end do
  h = 0.0625
  do i = 1, n
    znew(i) = z(i) + h * tz(i)
  end do
  nrm = 0.0
  do i = 1, n
    nrm = nrm + znew(i) * znew(i)
  end do
  nrm = sqrt(nrm)
  write nrm
end
"#;

/// The §4 interaction study: FUS, INX and LUR are all applicable and
/// enable/disable one another differently in different segments.
///
/// * segment 1 — two adjacent two-trip loops: fusable **and** unrollable;
///   applying LUR first destroys the FUS opportunity;
/// * segment 2 — two adjacent identical (i,j) nests, the second reading
///   the first's array: fusable, and both nests interchangeable; applying
///   FUS first destroys the two INX opportunities, applying INX first
///   destroys the FUS opportunity (the outer control variables diverge);
/// * segment 3 — an (i,j) nest followed by a j-loop: **not** fusable as
///   written, but interchanging the nest makes the two adjacent loops
///   conformable — INX *enables* FUS here.
pub const INTERACT: &str = r#"
program interact
  integer i, j
  real c(2), d(2), a(16,16), b(16,16), e(16,16), f(16)
  do i = 1, 2
    c(i) = 1.0
  end do
  do i = 1, 2
    d(i) = c(i)
  end do
  do i = 1, 16
    do j = 1, 16
      a(i,j) = 1.0
    end do
  end do
  do i = 1, 16
    do j = 1, 16
      b(i,j) = a(i,j)
    end do
  end do
  write b(1,1)
  do i = 1, 16
    do j = 1, 16
      e(i,j) = 2.0
    end do
  end do
  do j = 1, 16
    f(j) = 3.0
  end do
  write d(1)
  write e(1,1)
  write f(1)
end
"#;

/// The suite, in a fixed order: (name, MiniFor source).
pub const SOURCES: &[(&str, &str)] = &[
    ("fft", FFT),
    ("newton", NEWTON),
    ("bisect", BISECT),
    ("gauss", GAUSS),
    ("matmul", MATMUL),
    ("trapz", TRAPZ),
    ("fixpnf", FIXPNF),
    ("polsys", POLSYS),
    ("track", TRACK),
    ("interact", INTERACT),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_compile_and_validate() {
        for (name, src) in SOURCES {
            let p = gospel_frontend::compile(src)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            gospel_ir::validate(&p).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(p.len() > 5, "{name} is too small");
        }
    }

    #[test]
    fn all_programs_analyze() {
        for (name, p) in crate::suite() {
            let deps = gospel_dep::DepGraph::analyze(&p)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!deps.is_empty(), "{name} should have dependences");
        }
    }

    #[test]
    fn suite_has_loops_everywhere() {
        for (name, p) in crate::suite() {
            let loops = gospel_ir::LoopTable::of(&p).unwrap();
            assert!(!loops.is_empty(), "{name} has no loops");
        }
    }
}
