//! Seeded random program generator for property tests and scaling benches.

use gospel_ir::{AffineExpr, Opcode, Operand, Program, ProgramBuilder, Sym};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters for generated programs.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Approximate number of (non-marker) statements.
    pub statements: usize,
    /// Maximum loop/if nesting depth.
    pub max_depth: usize,
    /// Number of integer scalars (≥ 2).
    pub scalars: usize,
    /// Number of one-dimensional arrays (≥ 1).
    pub arrays: usize,
    /// Percentage (0–100) of assignments whose source is a constant.
    pub const_pct: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            statements: 60,
            max_depth: 3,
            scalars: 6,
            arrays: 3,
            const_pct: 40,
        }
    }
}

/// Generates a structurally valid random program. Deterministic per seed.
pub fn generate(seed: u64, cfg: GenConfig) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new(format!("gen{seed}"));

    let scalars: Vec<Sym> = (0..cfg.scalars.max(2))
        .map(|k| b.scalar_int(&format!("v{k}")))
        .collect();
    let lcvs: Vec<Sym> = (0..cfg.max_depth.max(1))
        .map(|k| b.scalar_int(&format!("i{k}")))
        .collect();
    let arrays: Vec<Sym> = (0..cfg.arrays.max(1))
        .map(|k| b.array_real(&format!("arr{k}"), &[64]))
        .collect();

    // Seed every scalar so uses are defined.
    for &s in &scalars {
        let v = rng.gen_range(1..20);
        b.assign(Operand::Var(s), Operand::int(v));
    }

    emit_block(&mut b, &mut rng, &cfg, &scalars, &lcvs, &arrays, 0, cfg.statements);

    // Keep results live.
    b.write(Operand::Var(scalars[0]));
    b.write(Operand::elem1(arrays[0], AffineExpr::constant_expr(1)));
    b.finish()
}

/// Deterministic input-vector set for differential (translation)
/// validation: `vectors` vectors of `len` integers each, derived from
/// `seed` the same way the program generator derives programs.
///
/// The first two vectors are the all-zeros and all-ones edge cases (so a
/// program whose `read` feeds a branch or loop bound always sees both a
/// falsy and a truthy value); the rest are uniform in `[-4, 12)`, biased
/// positive so loop bounds read from input mostly produce a few trips.
pub fn input_vectors(seed: u64, vectors: usize, len: usize) -> Vec<Vec<i64>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1997_0D1F_F0CC_AFE5);
    let mut out = Vec::with_capacity(vectors);
    for v in 0..vectors {
        out.push(match v {
            0 => vec![0; len],
            1 => vec![1; len],
            _ => (0..len).map(|_| rng.gen_range(-4i64..12)).collect(),
        });
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn emit_block(
    b: &mut ProgramBuilder,
    rng: &mut StdRng,
    cfg: &GenConfig,
    scalars: &[Sym],
    lcvs: &[Sym],
    arrays: &[Sym],
    depth: usize,
    budget: usize,
) {
    let mut remaining = budget;
    while remaining > 0 {
        let roll = rng.gen_range(0..100u32);
        if roll < 12 && depth < cfg.max_depth && remaining >= 4 {
            // a loop over the depth's LCV
            let lcv = lcvs[depth];
            let hi = rng.gen_range(2..32);
            let tok = b.do_head(lcv, Operand::int(1), Operand::int(hi));
            let inner = (remaining / 2).max(2);
            emit_block(b, rng, cfg, scalars, lcvs, arrays, depth + 1, inner);
            b.end_do(tok);
            remaining = remaining.saturating_sub(inner + 2);
        } else if roll < 20 && remaining >= 3 {
            // a conditional
            let s = scalars[rng.gen_range(0..scalars.len())];
            let tok = b.if_head(Opcode::IfGt, Operand::Var(s), Operand::int(0));
            let inner = (remaining / 3).max(1);
            emit_block(b, rng, cfg, scalars, lcvs, arrays, depth, inner);
            b.end_if(tok);
            remaining = remaining.saturating_sub(inner + 2);
        } else if roll < 45 && depth > 0 {
            // an array statement using the innermost LCV
            let arr = arrays[rng.gen_range(0..arrays.len())];
            let lcv = lcvs[depth - 1];
            let sub = AffineExpr::var(lcv).plus_const(rng.gen_range(0..2));
            if rng.gen_bool(0.5) {
                b.assign(
                    Operand::elem1(arr, sub),
                    Operand::Var(scalars[rng.gen_range(0..scalars.len())]),
                );
            } else {
                b.add(
                    Operand::elem1(arr, sub.clone()),
                    Operand::elem1(arr, sub),
                    Operand::int(1),
                );
            }
            remaining -= 1;
        } else {
            // a scalar statement
            let dst = scalars[rng.gen_range(0..scalars.len())];
            let src = if rng.gen_range(0..100) < cfg.const_pct {
                Operand::int(rng.gen_range(0..100))
            } else {
                Operand::Var(scalars[rng.gen_range(0..scalars.len())])
            };
            if rng.gen_bool(0.3) {
                b.add(Operand::Var(dst), src, Operand::int(rng.gen_range(1..5)));
            } else {
                b.assign(Operand::Var(dst), src);
            }
            remaining -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_are_valid() {
        for seed in 0..25 {
            let p = generate(seed, GenConfig::default());
            gospel_ir::validate(&p).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(p.len() >= 10, "seed {seed} too small: {}", p.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(7, GenConfig::default());
        let b = generate(7, GenConfig::default());
        assert!(a.structurally_eq(&b));
    }

    #[test]
    fn input_vectors_are_deterministic_and_cover_edges() {
        let a = input_vectors(9, 5, 4);
        let b = input_vectors(9, 5, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|v| v.len() == 4));
        assert_eq!(a[0], vec![0, 0, 0, 0]);
        assert_eq!(a[1], vec![1, 1, 1, 1]);
        assert_ne!(input_vectors(10, 5, 4)[2], a[2]);
        for v in &a[2..] {
            assert!(v.iter().all(|x| (-4..12).contains(x)));
        }
    }

    #[test]
    fn config_scales_size() {
        let small = generate(1, GenConfig { statements: 20, ..Default::default() });
        let large = generate(1, GenConfig { statements: 200, ..Default::default() });
        assert!(large.len() > small.len());
    }
}
