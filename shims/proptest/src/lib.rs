//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace ships
//! the subset of proptest's API its tests use: the [`Strategy`] trait
//! with `prop_map`, [`Just`], integer-range and tuple strategies,
//! `prop_oneof!`, `collection::vec`, `option::of`, `any::<T>()`, and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream, on purpose:
//!
//! - **No shrinking.** A failing case reports its formatted assertion
//!   message and the case index; inputs are deterministic per test, so a
//!   failure reproduces by rerunning the test.
//! - **Deterministic generation.** Every test function derives its RNG
//!   seed from its own name, so runs are stable across machines and
//!   invocations and independent of test execution order.
//! - `.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]

use std::fmt;
use std::rc::Rc;

/// A failed test case (what `prop_assert!` returns).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic RNG used to drive strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from a test-identifying string, so every test gets its own
    /// stable stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` below `n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Something that can produce random values of one type.
///
/// Unlike upstream there is no `ValueTree`: strategies generate final
/// values directly and nothing shrinks.
pub trait Strategy: Clone + 'static {
    /// The generated type.
    type Value: fmt::Debug + Clone + 'static;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Strat<O>
    where
        O: fmt::Debug + Clone + 'static,
        F: Fn(Self::Value) -> O + 'static,
        Self: Sized,
    {
        Strat::from_fn(move |rng| f(self.generate(rng)))
    }

    /// Chains generation: the drawn value picks the next strategy.
    fn prop_flat_map<O, S, F>(self, f: F) -> Strat<O>
    where
        O: fmt::Debug + Clone + 'static,
        S: Strategy<Value = O>,
        F: Fn(Self::Value) -> S + 'static,
        Self: Sized,
    {
        Strat::from_fn(move |rng| f(self.generate(rng)).generate(rng))
    }

    /// Type-erases into [`Strat`] (the shim's `BoxedStrategy`).
    fn into_strat(self) -> Strat<Self::Value>
    where
        Self: Sized,
    {
        Strat::from_fn(move |rng| self.generate(rng))
    }

    /// Upstream-compatible alias for [`Strategy::into_strat`].
    fn boxed(self) -> Strat<Self::Value>
    where
        Self: Sized,
    {
        self.into_strat()
    }
}

/// A type-erased strategy (the only concrete strategy type the shim
/// needs; everything converts into it).
pub struct Strat<V> {
    gen: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for Strat<V> {
    fn clone(&self) -> Self {
        Strat {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<V> fmt::Debug for Strat<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Strat")
    }
}

impl<V> Strat<V> {
    /// A strategy from a generation closure.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> V + 'static) -> Self {
        Strat { gen: Rc::new(f) }
    }
}

impl<V: fmt::Debug + Clone + 'static> Strategy for Strat<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen)(rng)
    }
}

/// Upstream's `BoxedStrategy` name, for signature compatibility.
pub type BoxedStrategy<V> = Strat<V>;

/// A strategy producing exactly `value`.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: fmt::Debug + Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Uniform choice between the given strategies (what `prop_oneof!`
/// builds).
pub fn union<V: fmt::Debug + Clone + 'static>(options: Vec<Strat<V>>) -> Strat<V> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
    Strat::from_fn(move |rng| {
        let i = rng.below(options.len());
        options[i].generate(rng)
    })
}

/// `any::<T>()` support.
pub trait Arbitrary: fmt::Debug + Clone + Sized + 'static {
    /// The canonical full-range strategy for the type.
    fn arbitrary() -> Strat<Self>;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> Strat<$t> {
                Strat::from_fn(|rng| rng.next_u64() as $t)
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary() -> Strat<bool> {
        Strat::from_fn(|rng| rng.next_u64() & 1 == 1)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Strat<T> {
    T::arbitrary()
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strat, Strategy, TestRng};
    use std::fmt;
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> Strat<Vec<S::Value>>
    where
        S::Value: fmt::Debug + Clone + 'static,
    {
        assert!(len.start < len.end, "empty length range");
        Strat::from_fn(move |rng: &mut TestRng| {
            let n = len.start + rng.below(len.end - len.start);
            (0..n).map(|_| element.generate(rng)).collect()
        })
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strat, Strategy, TestRng};

    /// `None` a quarter of the time, `Some(inner)` otherwise (upstream's
    /// default weighting).
    pub fn of<S: Strategy>(inner: S) -> Strat<Option<S::Value>> {
        Strat::from_fn(move |rng: &mut TestRng| {
            if rng.below(4) == 0 {
                None
            } else {
                Some(inner.generate(rng))
            }
        })
    }
}

/// Runner configuration (`proptest::test_runner`).
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; the shim trades a little coverage
            // for suite latency. Failures reproduce deterministically.
            Config { cases: 64 }
        }
    }
}

/// Everything a test module needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy, TestCaseError,
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::into_strat($s)),+])
    };
}

/// Declares property tests: each `pat in strategy` parameter is drawn
/// fresh per case, and the body may `return Ok(())` to skip a case or
/// fail via `prop_assert!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::test_runner::Config as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal: expands each test function inside `proptest!`.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        __case + 1,
                        __cfg.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( ($cfg:expr) ) => {};
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa, __pb) = (&$a, &$b);
        $crate::prop_assert!(
            *__pa == *__pb,
            "assertion failed: `{:?}` == `{:?}`", __pa, __pb
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__pa, __pb) = (&$a, &$b);
        if !(*__pa == *__pb) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __pa, __pb, format!($($fmt)*)
            )));
        }
    }};
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa, __pb) = (&$a, &$b);
        $crate::prop_assert!(
            *__pa != *__pb,
            "assertion failed: `{:?}` != `{:?}`", __pa, __pb
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Kind {
        A,
        B(i64),
    }

    fn kind() -> impl Strategy<Value = Kind> {
        prop_oneof![
            Just(Kind::A),
            any::<i64>().prop_map(Kind::B),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 5usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..9).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0i32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|e| (0..5).contains(e)));
        }

        #[test]
        fn tuples_and_oneof_compose((a, b) in (0i64..4, kind())) {
            prop_assert!(a < 4);
            match b {
                Kind::A => {}
                Kind::B(_) => {}
            }
            prop_assert_eq!(a, a);
        }

        #[test]
        fn option_of_produces_both(o in crate::option::of(1i32..2)) {
            if let Some(v) = o {
                prop_assert_eq!(v, 1);
            }
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::from_name("y");
        assert_ne!(crate::TestRng::from_name("x").next_u64(), c.next_u64());
    }
}
