//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace ships
//! the slice of criterion's API its benches use. There is no statistics
//! engine: timing uses one warm-up run plus a small fixed number of
//! measured iterations and prints a single min/mean line per benchmark.
//! Under `cargo test` (which builds and runs `harness = false` bench
//! targets) each benchmark body therefore executes at least once — a
//! useful smoke check — without the multi-second sampling of upstream.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A `group/function/parameter` benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A label from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Per-iteration timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u32,
    total: Duration,
    min: Duration,
}

impl Bencher {
    fn new(iters: u32) -> Self {
        Bencher {
            iters,
            total: Duration::ZERO,
            min: Duration::MAX,
        }
    }

    /// Runs `routine` once unmeasured, then `iters` measured times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    iters: u32,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream API surface; the shim derives its fixed iteration count
    /// from this (capped to keep `cargo test` fast).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u32).clamp(1, 10);
        self
    }

    /// Accepted and ignored (no warm-up phase beyond the first run).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted and ignored (fixed iteration count instead).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized, R>(&mut self, id: BenchmarkId, input: &I, routine: R) -> &mut Self
    where
        R: FnOnce(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.iters);
        routine(&mut b, input);
        report(&self.name, &id.to_string(), &b);
        self
    }

    /// Benchmarks a no-input `routine` under `id`.
    pub fn bench_function<R>(&mut self, id: impl fmt::Display, routine: R) -> &mut Self
    where
        R: FnOnce(&mut Bencher),
    {
        let mut b = Bencher::new(self.iters);
        routine(&mut b);
        report(&self.name, &id.to_string(), &b);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, b: &Bencher) {
    if b.iters > 0 && b.total > Duration::ZERO {
        let mean = b.total / b.iters;
        eprintln!("bench {group}/{id}: min {:?}, mean {:?} ({} iters)", b.min, mean, b.iters);
    }
}

/// The benchmark manager handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: 3,
            _criterion: self,
        }
    }

    /// Benchmarks a no-input `routine` outside any group.
    pub fn bench_function<R>(&mut self, id: impl fmt::Display, routine: R) -> &mut Self
    where
        R: FnOnce(&mut Bencher),
    {
        let mut b = Bencher::new(3);
        routine(&mut b);
        report("bench", &id.to_string(), &b);
        self
    }
}

/// Bundles benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// The bench target's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` passes harness flags like `--test`; `cargo
            // bench` passes `--bench`. The shim behaves identically —
            // run everything once, quickly — so flags are ignored.
            $( $group(); )+
        }
    };
}
