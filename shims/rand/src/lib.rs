//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the workspace ships the small, deterministic subset of `rand` it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] helpers `gen_range`/`gen_bool`/`gen`.
//!
//! The generator is splitmix64 (public domain, Sebastiano Vigna): fast,
//! full-period, and — crucially for the workspace's seeded workload
//! generator and fault-injection plans — stable across platforms and
//! releases. Streams differ from upstream `rand`'s StdRng, which is fine:
//! every consumer in this workspace treats the seed as an opaque handle to
//! *a* deterministic stream, never to a particular one.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Minimal core trait: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types with a uniform sampler (mirrors rand's trait of the same name;
/// the single generic [`SampleRange`] impl below keeps type inference
/// behaving exactly like upstream's `gen_range`).
pub trait SampleUniform: Copy {
    /// Uniform value in `[start, end)`.
    fn sample_in(start: Self, end: Self, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(start: Self, end: Self, rng: &mut dyn RngCore) -> Self {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value in the range.
    fn sample_one(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one(self, rng: &mut dyn RngCore) -> T {
        T::sample_in(self.start, self.end, rng)
    }
}

/// The user-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, the same construction rand uses.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                // Avoid the all-zero fixed point and decorrelate small seeds.
                state: state.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<i64> = (0..10).map(|_| StdRng::seed_from_u64(7).gen_range(0..100)).collect();
        let other: Vec<i64> = (0..10).map(|_| c.gen_range(0..100)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(2..32);
            assert!((2..32).contains(&v));
            let u: usize = r.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_hits_both_sides() {
        let mut r = StdRng::seed_from_u64(2);
        let trues = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&trues), "{trues}");
    }
}
