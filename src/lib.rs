//! Umbrella crate for the GENesis reproduction workspace.
//!
//! Re-exports every member crate so the top-level `examples/` and `tests/`
//! can address the whole system through one dependency. Library users should
//! depend on the individual crates ([`genesis`], [`gospel_lang`], …) instead.

pub use genesis;
pub use genesis_guard;
pub use gospel_dep;
pub use gospel_exec;
pub use gospel_frontend;
pub use gospel_ir;
pub use gospel_lang;
pub use gospel_opts;
pub use gospel_workloads;
